//! The threaded MIMD engine: one OS thread per simulated processor,
//! crossbeam channels as the interconnect.
//!
//! The engine spawns a thread for every node that is given an input (normal,
//! participating processors); faulty and dangling processors get no thread,
//! mirroring the paper's implementation where faulty nodes "run idle" and
//! receive no elements. Message transport is charged through the routing
//! layer: the number of links a message crosses is computed from the fault
//! model ([`crate::routing::hop_count`]), so a detour under the total-fault
//! model costs more virtual time than the same message under partial faults.

use super::trace::{Trace, TraceEvent, TraceKind};
use super::{Comm, Tag};
use crate::address::NodeId;
use crate::cost::{CostModel, VirtualClock};
use crate::fault::FaultSet;
use crate::routing;
use crate::stats::RunStats;
use crate::topology::Hypercube;
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Which routing algorithm the simulated machine charges hops with.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, serde::Serialize, serde::Deserialize)]
pub enum RouterKind {
    /// Shortest paths (e-cube under partial faults, BFS detours under total
    /// faults) — an omniscient oracle, the lower bound on hop counts.
    #[default]
    Oracle,
    /// Depth-first adaptive routing using only neighbor-local knowledge
    /// ([`crate::routing::adaptive_route`], after Chen & Shin) — what a
    /// real fault-tolerant router achieves; may take longer walks.
    Adaptive,
}

/// A message in flight.
struct Message<K> {
    src: NodeId,
    tag: Tag,
    data: Vec<K>,
    /// Sender's virtual clock at send time.
    sent_at: f64,
    /// Links this message crosses (precomputed by the sender's router).
    hops: u32,
}

/// What one simulated processor produced.
#[derive(Clone, Debug)]
pub struct NodeOutcome<T> {
    /// The node program's return value.
    pub result: T,
    /// The node's final virtual clock, µs.
    pub clock: f64,
    /// Operation counters for this node.
    pub stats: RunStats,
}

/// The result of running a program on the machine.
#[derive(Clone, Debug)]
pub struct RunOutcome<T> {
    outcomes: Vec<Option<NodeOutcome<T>>>,
    trace: Trace,
}

impl<T> RunOutcome<T> {
    /// Per-node outcomes indexed by physical address (`None` where no thread
    /// ran: faulty or idle processors).
    pub fn outcomes(&self) -> &[Option<NodeOutcome<T>>] {
        &self.outcomes
    }

    /// The event trace (empty unless [`Engine::with_tracing`] was enabled).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The outcome of a specific node, if it participated.
    pub fn node(&self, id: NodeId) -> Option<&NodeOutcome<T>> {
        self.outcomes.get(id.index()).and_then(|o| o.as_ref())
    }

    /// Turnaround time: the maximum virtual clock over all processors — the
    /// quantity the paper plots as "execution time".
    pub fn turnaround(&self) -> f64 {
        self.outcomes
            .iter()
            .flatten()
            .map(|o| o.clock)
            .fold(0.0, f64::max)
    }

    /// Aggregated operation counters over all processors.
    pub fn total_stats(&self) -> RunStats {
        self.outcomes.iter().flatten().map(|o| o.stats).sum()
    }

    /// Consumes the outcome, yielding `(node, result)` pairs in ascending
    /// address order.
    pub fn into_results(self) -> Vec<(NodeId, T)> {
        self.outcomes
            .into_iter()
            .enumerate()
            .filter_map(|(i, o)| o.map(|o| (NodeId::from(i), o.result)))
            .collect()
    }
}

/// The per-node communication handle handed to node programs.
///
/// Implements [`Comm`]; created only by [`Engine::run`].
pub struct NodeCtx<K> {
    me: NodeId,
    cube: Hypercube,
    faults: Arc<FaultSet>,
    cost: CostModel,
    clock: VirtualClock,
    stats: RunStats,
    rx: Receiver<Message<K>>,
    txs: Arc<Vec<Option<Sender<Message<K>>>>>,
    /// Messages that arrived before they were asked for.
    pending: HashMap<(NodeId, Tag), Vec<Message<K>>>,
    recv_timeout: Duration,
    router: RouterKind,
    /// Event log (Some only when tracing is enabled).
    trace: Option<Vec<TraceEvent>>,
}

impl<K> NodeCtx<K> {
    fn take_pending(&mut self, src: NodeId, tag: Tag) -> Option<Message<K>> {
        match self.pending.get_mut(&(src, tag)) {
            Some(list) if !list.is_empty() => Some(list.remove(0)),
            _ => None,
        }
    }
}

impl<K> Comm<K> for NodeCtx<K> {
    fn me(&self) -> NodeId {
        self.me
    }

    fn cube(&self) -> Hypercube {
        self.cube
    }

    fn faults(&self) -> &FaultSet {
        &self.faults
    }

    fn cost_model(&self) -> CostModel {
        self.cost
    }

    fn send(&mut self, dst: NodeId, tag: Tag, data: Vec<K>) {
        assert!(self.cube.contains(dst), "send to address outside cube");
        let hops = match self.router {
            RouterKind::Oracle => routing::hop_count(&self.faults, self.me, dst),
            RouterKind::Adaptive => {
                routing::adaptive_route(&self.faults, self.me, dst).map(|r| r.hops())
            }
        }
        .unwrap_or_else(|| panic!("{:?} cannot reach {:?}", self.me, dst));
        // The sender's port is busy pushing the elements onto its first link.
        self.clock.advance(self.cost.transfer(data.len(), hops.min(1)));
        self.stats.record_message(data.len(), hops);
        if let Some(trace) = &mut self.trace {
            trace.push(TraceEvent {
                time: self.clock.now(),
                node: self.me,
                tag,
                kind: TraceKind::Send {
                    to: dst,
                    elements: data.len(),
                    hops,
                },
            });
        }
        let msg = Message {
            src: self.me,
            tag,
            data,
            sent_at: self.clock.now(),
            hops,
        };
        let tx = self.txs[dst.index()]
            .as_ref()
            .unwrap_or_else(|| panic!("send to non-participating node {dst:?}"));
        tx.send(msg).expect("receiver hung up");
    }

    fn recv(&mut self, src: NodeId, tag: Tag) -> Vec<K> {
        let msg = if let Some(m) = self.take_pending(src, tag) {
            m
        } else {
            loop {
                let m = self
                    .rx
                    .recv_timeout(self.recv_timeout)
                    .unwrap_or_else(|_| {
                        panic!(
                            "{:?}: timed out waiting for message ({:?}, {:?}) — deadlock?",
                            self.me, src, tag
                        )
                    });
                if m.src == src && m.tag == tag {
                    break m;
                }
                self.pending.entry((m.src, m.tag)).or_default().push(m);
            }
        };
        self.clock
            .receive(msg.sent_at, self.cost.transfer(msg.data.len(), msg.hops));
        if let Some(trace) = &mut self.trace {
            trace.push(TraceEvent {
                time: self.clock.now(),
                node: self.me,
                tag,
                kind: TraceKind::Recv {
                    from: src,
                    elements: msg.data.len(),
                },
            });
        }
        msg.data
    }

    fn charge_comparisons(&mut self, count: usize) {
        self.clock.advance(self.cost.compare(count));
        self.stats.record_comparisons(count);
        if let Some(trace) = &mut self.trace {
            trace.push(TraceEvent {
                time: self.clock.now(),
                node: self.me,
                tag: Tag::new(0),
                kind: TraceKind::Compute { comparisons: count },
            });
        }
    }

    fn charge_compute(&mut self, cost: f64) {
        self.clock.advance(cost);
    }

    fn clock(&self) -> f64 {
        self.clock.now()
    }
}

/// The simulated multicomputer.
#[derive(Clone)]
pub struct Engine {
    faults: Arc<FaultSet>,
    cost: CostModel,
    recv_timeout: Duration,
    router: RouterKind,
    tracing: bool,
}

impl Engine {
    /// Creates a machine over the fault set's topology with the given cost
    /// model.
    pub fn new(faults: FaultSet, cost: CostModel) -> Self {
        Engine {
            faults: Arc::new(faults),
            cost,
            recv_timeout: Duration::from_secs(30),
            router: RouterKind::default(),
            tracing: false,
        }
    }

    /// Selects the routing algorithm used to charge hops (builder style).
    pub fn with_router(mut self, router: RouterKind) -> Self {
        self.router = router;
        self
    }

    /// Enables per-event tracing (builder style); the run's [`Trace`] is
    /// then available from [`RunOutcome::trace`].
    pub fn with_tracing(mut self) -> Self {
        self.tracing = true;
        self
    }

    /// A fault-free machine.
    pub fn fault_free(cube: Hypercube, cost: CostModel) -> Self {
        Engine::new(FaultSet::none(cube), cost)
    }

    /// Overrides the receive timeout used to detect deadlocked programs.
    pub fn with_recv_timeout(mut self, timeout: Duration) -> Self {
        self.recv_timeout = timeout;
        self
    }

    /// The topology.
    pub fn cube(&self) -> Hypercube {
        self.faults.cube()
    }

    /// The fault set.
    pub fn faults(&self) -> &FaultSet {
        &self.faults
    }

    /// The cost model.
    pub fn cost_model(&self) -> CostModel {
        self.cost
    }

    /// Runs `program` SPMD on every node for which `inputs` supplies data.
    ///
    /// `inputs[i]` is the initial local data of node `i`; nodes with `None`
    /// (faulty or deliberately idle processors) get no thread and must not be
    /// addressed by the program. Returns per-node results, virtual clocks and
    /// operation counts.
    ///
    /// # Panics
    /// Propagates panics from node programs (including the deadlock timeout)
    /// and rejects inputs assigned to faulty processors.
    pub fn run<K, T, F>(&self, inputs: Vec<Option<Vec<K>>>, program: F) -> RunOutcome<T>
    where
        K: Send,
        T: Send,
        F: Fn(&mut NodeCtx<K>, Vec<K>) -> T + Sync,
    {
        let cube = self.cube();
        assert_eq!(inputs.len(), cube.len(), "one input slot per processor");
        for (i, slot) in inputs.iter().enumerate() {
            if slot.is_some() {
                assert!(
                    self.faults.is_normal(NodeId::from(i)),
                    "input assigned to faulty processor P{i}"
                );
            }
        }

        // Build one channel per participating node.
        let mut txs: Vec<Option<Sender<Message<K>>>> = Vec::with_capacity(cube.len());
        let mut rxs: Vec<Option<Receiver<Message<K>>>> = Vec::with_capacity(cube.len());
        for slot in &inputs {
            if slot.is_some() {
                let (tx, rx) = unbounded();
                txs.push(Some(tx));
                rxs.push(Some(rx));
            } else {
                txs.push(None);
                rxs.push(None);
            }
        }
        let txs = Arc::new(txs);

        let mut outcomes: Vec<Option<NodeOutcome<T>>> =
            (0..cube.len()).map(|_| None).collect();
        let program = &program;

        let traces = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (i, (input, rx)) in inputs.into_iter().zip(rxs).enumerate() {
                let (Some(input), Some(rx)) = (input, rx) else {
                    continue;
                };
                let txs = Arc::clone(&txs);
                let faults = Arc::clone(&self.faults);
                let cost = self.cost;
                let recv_timeout = self.recv_timeout;
                let router = self.router;
                let tracing = self.tracing;
                let handle = scope.spawn(move || {
                    let mut ctx = NodeCtx {
                        me: NodeId::from(i),
                        cube,
                        faults,
                        cost,
                        clock: VirtualClock::new(),
                        stats: RunStats::new(),
                        rx,
                        txs,
                        pending: HashMap::new(),
                        recv_timeout,
                        router,
                        trace: tracing.then(Vec::new),
                    };
                    let result = program(&mut ctx, input);
                    (
                        i,
                        NodeOutcome {
                            result,
                            clock: ctx.clock.now(),
                            stats: ctx.stats,
                        },
                        ctx.trace.unwrap_or_default(),
                    )
                });
                handles.push(handle);
            }
            let mut traces = Vec::new();
            for handle in handles {
                let (i, outcome, trace) = handle.join().expect("node program panicked");
                outcomes[i] = Some(outcome);
                traces.push(trace);
            }
            traces
        });

        RunOutcome {
            outcomes,
            trace: Trace::assemble(traces),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultModel;

    fn engine(n: usize) -> Engine {
        Engine::fault_free(Hypercube::new(n), CostModel::paper_form())
    }

    /// Inputs giving every node one key equal to its own address.
    fn identity_inputs(n: usize) -> Vec<Option<Vec<u32>>> {
        (0..1usize << n).map(|i| Some(vec![i as u32])).collect()
    }

    #[test]
    fn ping_pong_between_neighbors() {
        let eng = engine(1);
        let out = eng.run(identity_inputs(1), |ctx, data| {
            let partner = ctx.me().neighbor(0);
            let theirs = ctx.exchange(partner, Tag::new(0), data);
            theirs[0]
        });
        let results = out.into_results();
        assert_eq!(results, vec![(NodeId::new(0), 1), (NodeId::new(1), 0)]);
    }

    #[test]
    fn dimension_sweep_total_exchange() {
        // All-to-all reduction by sweeping dimensions: every node ends up
        // with the sum over the whole cube.
        let n = 4;
        let eng = engine(n);
        let out = eng.run(identity_inputs(n), |ctx, data| {
            let mut acc = data[0];
            for d in 0..ctx.cube().dim() {
                let theirs = ctx.exchange(ctx.me().neighbor(d), Tag::new(d as u64), vec![acc]);
                acc += theirs[0];
            }
            acc
        });
        let expected: u32 = (0..16).sum();
        for (_, v) in out.into_results() {
            assert_eq!(v, expected);
        }
    }

    #[test]
    fn virtual_time_is_deterministic_across_runs() {
        let n = 4;
        let run = || {
            let eng = engine(n);
            let out = eng.run(identity_inputs(n), |ctx, data| {
                let mut acc = data;
                for d in 0..ctx.cube().dim() {
                    let theirs =
                        ctx.exchange(ctx.me().neighbor(d), Tag::new(d as u64), acc.clone());
                    ctx.charge_comparisons(acc.len() + theirs.len());
                    acc.extend(theirs);
                    acc.sort_unstable();
                }
                acc.len()
            });
            let clocks: Vec<f64> = out.outcomes().iter().flatten().map(|o| o.clock).collect();
            (out.turnaround(), clocks)
        };
        let (t1, c1) = run();
        let (t2, c2) = run();
        assert_eq!(t1, t2);
        assert_eq!(c1, c2);
        assert!(t1 > 0.0);
    }

    #[test]
    fn clock_advances_with_message_size_and_hops() {
        // node 0 sends k elements to the opposite corner (n hops); the
        // receiver's clock must be ≥ k * n * t_sr.
        let n = 3;
        let k = 100usize;
        let eng = engine(n);
        let mut inputs: Vec<Option<Vec<u32>>> = vec![None; 8];
        inputs[0] = Some((0..k as u32).collect());
        inputs[7] = Some(vec![]);
        let out = eng.run(inputs, |ctx, data| {
            if ctx.me() == NodeId::new(0) {
                ctx.send(NodeId::new(7), Tag::new(1), data);
                0.0
            } else {
                let got = ctx.recv(NodeId::new(0), Tag::new(1));
                assert_eq!(got.len(), k);
                ctx.clock()
            }
        });
        let t_sr = eng.cost_model().t_sr;
        let receiver_clock = out.node(NodeId::new(7)).unwrap().result;
        // sender pays 1 hop of port time, receiver syncs to sent_at + 3 hops
        let expected = (k as f64) * t_sr + (k as f64) * 3.0 * t_sr;
        assert!(
            (receiver_clock - expected).abs() < 1e-9,
            "clock {receiver_clock} vs expected {expected}"
        );
        let stats = out.total_stats();
        assert_eq!(stats.messages, 1);
        assert_eq!(stats.elements_sent, k as u64);
        assert_eq!(stats.element_hops, (k * 3) as u64);
        assert_eq!(stats.max_hops, 3);
    }

    #[test]
    fn total_fault_model_charges_detour_hops() {
        // With node 1 totally faulty, 0 → 3 must detour (still 2 hops in Q2?
        // no: Q2 path 0→2→3 avoids 1 and has 2 hops). Use Q3 and kill both
        // intermediates 1 and 2 so the route 0→3 needs 4 hops.
        let faults =
            FaultSet::from_raw(Hypercube::new(3), &[1, 2]).with_model(FaultModel::Total);
        let eng = Engine::new(faults, CostModel::paper_form());
        let mut inputs: Vec<Option<Vec<u32>>> = vec![None; 8];
        inputs[0] = Some(vec![42]);
        inputs[3] = Some(vec![]);
        let out = eng.run(inputs, |ctx, _data| {
            if ctx.me() == NodeId::new(0) {
                ctx.send(NodeId::new(3), Tag::new(9), vec![7]);
            } else {
                let got = ctx.recv(NodeId::new(0), Tag::new(9));
                assert_eq!(got, vec![7]);
            }
        });
        assert_eq!(out.total_stats().max_hops, 4);
    }

    #[test]
    fn partial_fault_model_relays_through_faults() {
        let faults =
            FaultSet::from_raw(Hypercube::new(3), &[1, 2]).with_model(FaultModel::Partial);
        let eng = Engine::new(faults, CostModel::paper_form());
        let mut inputs: Vec<Option<Vec<u32>>> = vec![None; 8];
        inputs[0] = Some(vec![]);
        inputs[3] = Some(vec![]);
        let out = eng.run(inputs, |ctx, _| {
            if ctx.me() == NodeId::new(0) {
                ctx.send(NodeId::new(3), Tag::new(9), vec![7u32]);
            } else {
                ctx.recv(NodeId::new(0), Tag::new(9));
            }
        });
        assert_eq!(out.total_stats().max_hops, 2, "e-cube path relays via fault");
    }

    #[test]
    fn out_of_order_tags_are_buffered() {
        let eng = engine(1);
        let out = eng.run(identity_inputs(1), |ctx, _| {
            let partner = ctx.me().neighbor(0);
            if ctx.me() == NodeId::new(0) {
                // send in one order…
                ctx.send(partner, Tag::new(1), vec![10u32]);
                ctx.send(partner, Tag::new(2), vec![20u32]);
                0
            } else {
                // …receive in the other
                let b = ctx.recv(NodeId::new(0), Tag::new(2));
                let a = ctx.recv(NodeId::new(0), Tag::new(1));
                a[0] + b[0]
            }
        });
        assert_eq!(out.node(NodeId::new(1)).unwrap().result, 30);
    }

    #[test]
    fn comparisons_charge_clock_and_stats() {
        let eng = engine(0);
        let out = eng.run(vec![Some(Vec::<u32>::new())], |ctx, _| {
            ctx.charge_comparisons(17);
            ctx.charge_compute(5.0);
            ctx.clock()
        });
        let o = out.node(NodeId::new(0)).unwrap();
        assert_eq!(o.result, 17.0 * eng.cost_model().t_c + 5.0);
        assert_eq!(o.stats.comparisons, 17);
    }

    #[test]
    fn faulty_nodes_cannot_receive_inputs() {
        let faults = FaultSet::from_raw(Hypercube::new(2), &[1]);
        let eng = Engine::new(faults, CostModel::paper_form());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut inputs: Vec<Option<Vec<u32>>> = vec![None; 4];
            inputs[1] = Some(vec![1]);
            eng.run(inputs, |_ctx, _d| 0u32);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn tracing_records_sends_recvs_and_compute() {
        use super::super::trace::TraceKind;
        let eng = Engine::fault_free(Hypercube::new(1), CostModel::paper_form()).with_tracing();
        let out = eng.run(identity_inputs(1), |ctx, data| {
            ctx.charge_comparisons(3);
            let partner = ctx.me().neighbor(0);
            let theirs = ctx.exchange(partner, Tag::new(4), data);
            theirs[0]
        });
        let trace = out.trace();
        assert!(!trace.is_empty());
        // 2 sends + 2 recvs + 2 computes
        assert_eq!(trace.len(), 6);
        assert_eq!(trace.sends().count(), 2);
        // timestamps are non-decreasing
        assert!(trace
            .events()
            .windows(2)
            .all(|w| w[0].time <= w[1].time));
        // every send has a matching recv with the same element count
        for s in trace.sends() {
            let TraceKind::Send { to, elements, .. } = s.kind else {
                unreachable!()
            };
            assert!(trace.for_node(to).any(|e| matches!(
                e.kind,
                TraceKind::Recv { from, elements: el } if from == s.node && el == elements
            )));
        }
    }

    #[test]
    fn tracing_disabled_by_default() {
        let eng = Engine::fault_free(Hypercube::new(1), CostModel::paper_form());
        let out = eng.run(identity_inputs(1), |ctx, data| {
            ctx.exchange(ctx.me().neighbor(0), Tag::new(4), data)
        });
        assert!(out.trace().is_empty());
    }

    #[test]
    fn recv_timeout_detects_deadlock() {
        let eng = Engine::fault_free(Hypercube::new(0), CostModel::paper_form())
            .with_recv_timeout(Duration::from_millis(100));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            eng.run(vec![Some(vec![0u32])], |ctx, _| {
                // nobody ever sends this: the engine must panic, not hang
                ctx.recv(ctx.me(), Tag::new(1))
            });
        }));
        assert!(result.is_err(), "deadlocked program must panic");
    }

    #[test]
    fn idle_nodes_do_not_run() {
        let eng = engine(2);
        let mut inputs: Vec<Option<Vec<u32>>> = vec![None; 4];
        inputs[2] = Some(vec![]);
        let out = eng.run(inputs, |ctx, _| ctx.me().raw());
        assert!(out.node(NodeId::new(0)).is_none());
        assert!(out.node(NodeId::new(1)).is_none());
        assert_eq!(out.node(NodeId::new(2)).unwrap().result, 2);
        assert!(out.node(NodeId::new(3)).is_none());
        assert_eq!(out.into_results().len(), 1);
    }
}
