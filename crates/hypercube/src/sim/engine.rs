//! The threaded MIMD engine: one OS thread per simulated processor, bounded
//! `std::sync::mpsc` channels as the interconnect — plus the shared node
//! context ([`NodeCtx`]) used by both this engine and the sequential
//! event-driven engine ([`super::sequential::SeqEngine`]).
//!
//! The engine spawns a thread for every node that is given an input (normal,
//! participating processors); faulty and dangling processors get no thread,
//! mirroring the paper's implementation where faulty nodes "run idle" and
//! receive no elements. Message transport is charged through the routing
//! layer: the number of links a message crosses is computed from the fault
//! model ([`crate::routing::hop_count`]), so a detour under the total-fault
//! model costs more virtual time than the same message under partial faults.
//!
//! [`Engine`] is a front door over all executors: [`Engine::run`] dispatches
//! on [`EngineKind`] (default [`EngineKind::Seq`]), so callers pick an
//! executor with [`Engine::with_engine`] and are guaranteed identical
//! simulated results either way.

use super::frontier::{CellCtx, CellRecord};
use super::par::ParEngine;
use super::sequential::SeqEngine;
use super::trace::{Trace, TraceEvent, TraceKind};
use super::{Comm, EngineKind, LinkModel, Tag};
use crate::address::NodeId;
use crate::cost::{CostModel, VirtualClock};
use crate::fault::FaultSet;
use crate::obs::metrics::{self, EngineMetrics};
use crate::obs::schedule::{reconstruct_inbox_peaks, reprice_full};
use crate::obs::sink::{NodeSummary, TraceSink};
use crate::obs::{NodeMetrics, NodeObservation, RunObservation, SpanLog, SpanRecord};
use crate::routing;
use crate::stats::RunStats;
use crate::topology::Hypercube;
use std::collections::HashMap;
use std::future::Future;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Waker};
use std::time::Duration;

/// Which routing algorithm the simulated machine charges hops with.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, serde::Serialize, serde::Deserialize)]
pub enum RouterKind {
    /// Shortest paths (e-cube under partial faults, BFS detours under total
    /// faults) — an omniscient oracle, the lower bound on hop counts.
    #[default]
    Oracle,
    /// Depth-first adaptive routing using only neighbor-local knowledge
    /// ([`crate::routing::adaptive_route`], after Chen & Shin) — what a
    /// real fault-tolerant router achieves; may take longer walks.
    Adaptive,
}

/// A message in flight on the threaded engine.
struct Message<K> {
    src: NodeId,
    tag: Tag,
    data: Vec<K>,
    /// Sender's virtual clock at send time.
    sent_at: f64,
    /// Links this message crosses (precomputed by the sender's router).
    hops: u32,
}

/// What one simulated processor produced.
#[derive(Clone, Debug)]
pub struct NodeOutcome<T> {
    /// The node program's return value.
    pub result: T,
    /// The node's final virtual clock, µs.
    pub clock: f64,
    /// Operation counters for this node.
    pub stats: RunStats,
    /// Closed observability spans ([`crate::sim::Comm::span_enter`]), in
    /// close order.
    pub spans: Vec<SpanRecord>,
    /// Per-node utilization/communication metrics.
    pub metrics: NodeMetrics,
}

/// Capacity preallocated for a node's trace buffer when tracing is on.
///
/// One step-8 pass of the fault-tolerant sort runs at most `dim` merge
/// stages of up to `dim` substages each, and every substage produces at
/// most 6 traced events per node (two protocol rounds of send + recv,
/// plus compute charges). `16·dim² + 64` therefore covers the heaviest
/// algorithm in the workspace with ≥2× slack — a buffer that overflows it
/// simply reallocates, so this is a fast path, not a correctness bound.
pub(super) fn trace_capacity(dim: usize) -> usize {
    16 * dim * dim + 64
}

/// The result of running a program on the machine.
#[derive(Clone, Debug)]
pub struct RunOutcome<T> {
    outcomes: Vec<Option<NodeOutcome<T>>>,
    trace: Trace,
    dim: usize,
    cost: CostModel,
    link_model: LinkModel,
}

impl<T> RunOutcome<T> {
    pub(super) fn new(
        outcomes: Vec<Option<NodeOutcome<T>>>,
        trace: Trace,
        dim: usize,
        cost: CostModel,
        link_model: LinkModel,
    ) -> Self {
        RunOutcome {
            outcomes,
            trace,
            dim,
            cost,
            link_model,
        }
    }

    /// The run's observability view — spans, metrics and trace detached
    /// from the node results — for reporting ([`RunObservation::report`]),
    /// Perfetto export and critical-path analysis.
    pub fn observation(&self) -> RunObservation {
        RunObservation {
            dim: self.dim,
            cost: self.cost,
            link_model: self.link_model,
            key_type: None,
            trace: self.trace.clone(),
            nodes: self
                .outcomes
                .iter()
                .enumerate()
                .map(|(i, o)| {
                    o.as_ref().map(|o| NodeObservation {
                        node: NodeId::from(i),
                        clock: o.clock,
                        stats: o.stats,
                        spans: o.spans.clone(),
                        metrics: o.metrics.clone(),
                    })
                })
                .collect(),
        }
    }

    /// Per-node outcomes indexed by physical address (`None` where no
    /// program ran: faulty or idle processors).
    pub fn outcomes(&self) -> &[Option<NodeOutcome<T>>] {
        &self.outcomes
    }

    /// The event trace (empty unless [`Engine::with_tracing`] was enabled).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The outcome of a specific node, if it participated.
    pub fn node(&self, id: NodeId) -> Option<&NodeOutcome<T>> {
        self.outcomes.get(id.index()).and_then(|o| o.as_ref())
    }

    /// Turnaround time: the maximum virtual clock over all processors — the
    /// quantity the paper plots as "execution time".
    pub fn turnaround(&self) -> f64 {
        self.outcomes
            .iter()
            .flatten()
            .map(|o| o.clock)
            .fold(0.0, f64::max)
    }

    /// Aggregated operation counters over all processors.
    pub fn total_stats(&self) -> RunStats {
        self.outcomes.iter().flatten().map(|o| o.stats).sum()
    }

    /// Consumes the outcome, yielding `(node, result)` pairs in ascending
    /// address order.
    pub fn into_results(self) -> Vec<(NodeId, T)> {
        self.outcomes
            .into_iter()
            .enumerate()
            .filter_map(|(i, o)| o.map(|o| (NodeId::from(i), o.result)))
            .collect()
    }
}

/// Hops charged for a `src → dst` message under the given router.
pub(super) fn route_hops(faults: &FaultSet, router: RouterKind, src: NodeId, dst: NodeId) -> u32 {
    match router {
        RouterKind::Oracle => routing::hop_count(faults, src, dst),
        RouterKind::Adaptive => routing::adaptive_route(faults, src, dst).map(|r| r.hops()),
    }
    .unwrap_or_else(|| panic!("{src:?} cannot reach {dst:?}"))
}

/// Checks the input layout against the topology and fault set.
pub(super) fn validate_inputs<K>(faults: &FaultSet, inputs: &[Option<Vec<K>>]) {
    assert_eq!(
        inputs.len(),
        faults.cube().len(),
        "one input slot per processor"
    );
    for (i, slot) in inputs.iter().enumerate() {
        if slot.is_some() {
            assert!(
                faults.is_normal(NodeId::from(i)),
                "input assigned to faulty processor P{i}"
            );
        }
    }
}

/// Live occupancy gauge for one node's receive channel. Senders bump the
/// destination's count, the receiver decrements as it drains — the peak is
/// the channel's high-water mark. Unlike every other observation this is
/// executor-dependent (it reflects real thread interleaving), so it is
/// reported but excluded from engine-differential comparisons.
#[derive(Default)]
pub(super) struct InboxGauge {
    count: AtomicU64,
    peak: AtomicU64,
}

impl InboxGauge {
    fn on_enqueue(&self) {
        let now = self.count.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak.fetch_max(now, Ordering::Relaxed);
    }

    fn on_dequeue(&self) {
        self.count.fetch_sub(1, Ordering::Relaxed);
    }

    fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }
}

/// Per-node state of the threaded engine: real channels, local clock.
struct ThreadedCtx<K> {
    clock: VirtualClock,
    stats: RunStats,
    rx: Receiver<Message<K>>,
    txs: Arc<Vec<Option<SyncSender<Message<K>>>>>,
    /// Messages that arrived before they were asked for.
    pending: HashMap<(NodeId, Tag), Vec<Message<K>>>,
    recv_timeout: Duration,
    /// Event log (Some only when tracing is enabled).
    trace: Option<Vec<TraceEvent>>,
    /// Observability spans ([`Comm::span_enter`]).
    spans: SpanLog,
    /// Per-node utilization/communication metrics.
    metrics: NodeMetrics,
    /// Channel occupancy gauges, shared by all nodes of the run.
    gauges: Arc<Vec<InboxGauge>>,
    /// Streaming record sink (Some only when one is attached). The lock
    /// serializes records across node threads while keeping each node's
    /// own records in program order — the invariant replay relies on.
    sink: Option<Arc<Mutex<dyn TraceSink>>>,
    /// Per-node record capture for the contended post-pass (Some only
    /// under [`LinkModel::Contended`] with a sink attached). The run
    /// executes uncontended-internally; records are buffered here in
    /// program order, re-priced after the join, and emitted to the sink in
    /// canonical commit order — live streaming (`sink` above) is
    /// suppressed while this is active.
    capture: Option<Vec<CellRecord>>,
    /// Live-telemetry handles, resolved once per node thread from the
    /// process-wide registry; `None` keeps every hook a single branch.
    obs: Option<EngineMetrics>,
}

impl<K> ThreadedCtx<K> {
    /// Whether trace events need to be materialized at all (buffered
    /// trace, attached sink, capture, or any combination).
    fn observing(&self) -> bool {
        self.trace.is_some() || self.sink.is_some() || self.capture.is_some()
    }

    /// Routes one trace event to the in-memory buffer, the sink and/or the
    /// contended capture.
    fn emit_event(&mut self, ev: TraceEvent) {
        if let Some(trace) = &mut self.trace {
            trace.push(ev);
        }
        if let Some(sink) = &self.sink {
            sink.lock().expect("trace sink lock poisoned").event(&ev);
        }
        if let Some(capture) = &mut self.capture {
            capture.push(CellRecord::Event(ev));
        }
    }

    fn take_pending(&mut self, src: NodeId, tag: Tag) -> Option<Message<K>> {
        match self.pending.get_mut(&(src, tag)) {
            Some(list) if !list.is_empty() => Some(list.remove(0)),
            _ => None,
        }
    }

    fn send(
        &mut self,
        me: NodeId,
        dst: NodeId,
        tag: Tag,
        data: Vec<K>,
        hops: u32,
        cost: CostModel,
    ) {
        // The sender's port is busy pushing the elements onto its first link.
        self.clock.advance(cost.transfer(data.len(), hops.min(1)));
        self.stats.record_message(data.len(), hops);
        self.metrics.on_send(me, dst, data.len(), hops, &cost);
        if let Some(m) = &self.obs {
            m.elements_priced.add(data.len() as u64);
            m.msg_elements.record(data.len() as u64);
            // On the threaded engine the channel push *is* delivery.
            m.messages_delivered.inc();
        }
        if self.observing() {
            self.emit_event(TraceEvent {
                time: self.clock.now(),
                node: me,
                tag,
                kind: TraceKind::Send {
                    to: dst,
                    elements: data.len(),
                    hops,
                },
            });
        }
        let msg = Message {
            src: me,
            tag,
            data,
            sent_at: self.clock.now(),
            hops,
        };
        let tx = self.txs[dst.index()]
            .as_ref()
            .unwrap_or_else(|| panic!("send to non-participating node {dst:?}"));
        self.gauges[dst.index()].on_enqueue();
        tx.send(msg).expect("receiver hung up");
    }

    fn recv(&mut self, me: NodeId, src: NodeId, tag: Tag, cost: CostModel) -> Vec<K> {
        let msg = if let Some(m) = self.take_pending(src, tag) {
            m
        } else {
            loop {
                let m = self.rx.recv_timeout(self.recv_timeout).unwrap_or_else(|_| {
                    panic!("{me:?}: timed out waiting for message ({src:?}, {tag:?}) — deadlock?")
                });
                self.gauges[me.index()].on_dequeue();
                if m.src == src && m.tag == tag {
                    break m;
                }
                self.pending.entry((m.src, m.tag)).or_default().push(m);
            }
        };
        let before = self.clock.now();
        self.clock
            .receive(msg.sent_at, cost.transfer(msg.data.len(), msg.hops));
        // Any forward jump is time this node spent waiting on the wire.
        let blocked = self.clock.now() - before;
        self.metrics.blocked_us += blocked;
        self.metrics.msgs_received += 1;
        if let Some(m) = &self.obs {
            if blocked > 0.0 {
                m.link_wait_us.add(blocked as u64);
            }
        }
        if self.observing() {
            self.emit_event(TraceEvent {
                time: self.clock.now(),
                node: me,
                tag,
                kind: TraceKind::Recv {
                    from: src,
                    elements: msg.data.len(),
                    // The threaded engine always *executes* uncontended;
                    // under Contended the post-pass re-prices these events
                    // and fills the real waits.
                    wait: 0.0,
                },
            });
        }
        msg.data
    }
}

/// Executor-specific half of a [`NodeCtx`].
enum CtxInner<K> {
    Threaded(Box<ThreadedCtx<K>>),
    /// The frontier engines' cell-backed context (sequential and parallel
    /// executors share it — one code path, byte-identical behavior).
    Cell(CellCtx<K>),
}

/// The per-node communication handle handed to node programs.
///
/// Implements [`Comm`]; created only by the engines. The same type serves
/// both executors so one generic node program compiles once and runs on
/// either.
pub struct NodeCtx<K> {
    me: NodeId,
    cube: Hypercube,
    faults: Arc<FaultSet>,
    cost: CostModel,
    router: RouterKind,
    inner: CtxInner<K>,
}

impl<K> NodeCtx<K> {
    pub(super) fn new_cell(
        me: NodeId,
        cube: Hypercube,
        faults: Arc<FaultSet>,
        cost: CostModel,
        router: RouterKind,
        cell: CellCtx<K>,
    ) -> Self {
        NodeCtx {
            me,
            cube,
            faults,
            cost,
            router,
            inner: CtxInner::Cell(cell),
        }
    }
}

impl<K> Comm<K> for NodeCtx<K> {
    fn me(&self) -> NodeId {
        self.me
    }

    fn cube(&self) -> Hypercube {
        self.cube
    }

    fn faults(&self) -> &FaultSet {
        &self.faults
    }

    fn cost_model(&self) -> CostModel {
        self.cost
    }

    fn send(&mut self, dst: NodeId, tag: Tag, data: Vec<K>) {
        assert!(self.cube.contains(dst), "send to address outside cube");
        let hops = route_hops(&self.faults, self.router, self.me, dst);
        match &mut self.inner {
            CtxInner::Threaded(t) => t.send(self.me, dst, tag, data, hops, self.cost),
            CtxInner::Cell(c) => c.send(self.me, dst, tag, data, hops, self.cost),
        }
    }

    async fn recv(&mut self, src: NodeId, tag: Tag) -> Vec<K> {
        match &mut self.inner {
            CtxInner::Threaded(t) => t.recv(self.me, src, tag, self.cost),
            CtxInner::Cell(c) => c.recv(self.me, src, tag, self.cost).await,
        }
    }

    fn span_enter(&mut self, phase: u16) {
        match &mut self.inner {
            CtxInner::Threaded(t) => {
                let now = t.clock.now();
                t.spans.enter(phase, now);
                if let Some(sink) = &t.sink {
                    sink.lock()
                        .expect("trace sink lock poisoned")
                        .span(self.me, Some(phase), now);
                }
                if let Some(capture) = &mut t.capture {
                    capture.push(CellRecord::Span {
                        phase: Some(phase),
                        time: now,
                    });
                }
            }
            CtxInner::Cell(c) => c.span_enter(self.me, phase),
        }
    }

    fn span_exit(&mut self) {
        match &mut self.inner {
            CtxInner::Threaded(t) => {
                let now = t.clock.now();
                t.spans.exit(now);
                if let Some(sink) = &t.sink {
                    sink.lock()
                        .expect("trace sink lock poisoned")
                        .span(self.me, None, now);
                }
                if let Some(capture) = &mut t.capture {
                    capture.push(CellRecord::Span {
                        phase: None,
                        time: now,
                    });
                }
            }
            CtxInner::Cell(c) => c.span_exit(self.me),
        }
    }

    fn charge_comparisons(&mut self, count: usize) {
        match &mut self.inner {
            CtxInner::Threaded(t) => {
                t.clock.advance(self.cost.compare(count));
                t.stats.record_comparisons(count);
                if t.observing() {
                    t.emit_event(TraceEvent {
                        time: t.clock.now(),
                        node: self.me,
                        tag: Tag::new(0),
                        kind: TraceKind::Compute { comparisons: count },
                    });
                }
            }
            CtxInner::Cell(c) => c.charge_comparisons(self.me, count, self.cost),
        }
    }

    fn charge_compute(&mut self, cost: f64) {
        match &mut self.inner {
            CtxInner::Threaded(t) => t.clock.advance(cost),
            CtxInner::Cell(c) => c.charge_compute(cost),
        }
    }

    fn clock(&self) -> f64 {
        match &self.inner {
            CtxInner::Threaded(t) => t.clock.now(),
            CtxInner::Cell(c) => c.clock(),
        }
    }
}

/// Polls a node-program future to completion on the current thread.
///
/// On the threaded engine a blocked receive blocks *inside* the poll (on the
/// channel), so the future is always `Ready` after one poll.
pub(super) fn run_to_completion<Fut: Future>(fut: Fut) -> Fut::Output {
    let mut cx = Context::from_waker(Waker::noop());
    let mut fut = std::pin::pin!(fut);
    match fut.as_mut().poll(&mut cx) {
        Poll::Ready(v) => v,
        Poll::Pending => unreachable!(
            "threaded-engine node programs never suspend: recv blocks on the channel inside poll"
        ),
    }
}

/// The simulated multicomputer.
#[derive(Clone)]
pub struct Engine {
    faults: Arc<FaultSet>,
    cost: CostModel,
    recv_timeout: Duration,
    router: RouterKind,
    link_model: LinkModel,
    tracing: bool,
    kind: EngineKind,
    sink: Option<Arc<Mutex<dyn TraceSink>>>,
    workers: Option<usize>,
    shard: Option<usize>,
    sched_profiler: Option<Arc<crate::obs::sched::SchedProfiler>>,
}

impl Engine {
    /// Creates a machine over the fault set's topology with the given cost
    /// model, using the default executor ([`EngineKind::Seq`]).
    pub fn new(faults: FaultSet, cost: CostModel) -> Self {
        Engine {
            faults: Arc::new(faults),
            cost,
            recv_timeout: Duration::from_secs(30),
            router: RouterKind::default(),
            link_model: LinkModel::default(),
            tracing: false,
            kind: EngineKind::default(),
            sink: None,
            workers: None,
            shard: None,
            sched_profiler: None,
        }
    }

    /// Selects the routing algorithm used to charge hops (builder style).
    pub fn with_router(mut self, router: RouterKind) -> Self {
        self.router = router;
        self
    }

    /// Selects the link pricing model (builder style). The default,
    /// [`LinkModel::Uncontended`], prices every transfer as if its links
    /// were private; [`LinkModel::Contended`] serializes messages on the
    /// cube's shared directed links, and every receive records its
    /// wait/transfer split. All executors produce identical simulated
    /// results under either model.
    pub fn with_link_model(mut self, link_model: LinkModel) -> Self {
        self.link_model = link_model;
        self
    }

    /// Selects the executor (builder style). Both executors produce
    /// identical simulated results; they differ only in wall-clock cost.
    pub fn with_engine(mut self, kind: EngineKind) -> Self {
        self.kind = kind;
        self
    }

    /// Enables per-event tracing (builder style); the run's [`Trace`] is
    /// then available from [`RunOutcome::trace`].
    pub fn with_tracing(mut self) -> Self {
        self.tracing = true;
        self
    }

    /// Attaches a streaming [`TraceSink`] (builder style): the run's
    /// records — trace events, span boundaries and a per-node footer —
    /// are handed to the sink as they are emitted, independently of
    /// [`Engine::with_tracing`] (which controls only the in-memory
    /// buffered [`Trace`]). Streaming without tracing is the O(1)-memory
    /// path for large runs.
    pub fn with_trace_sink(mut self, sink: Arc<Mutex<dyn TraceSink>>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// A fault-free machine.
    pub fn fault_free(cube: Hypercube, cost: CostModel) -> Self {
        Engine::new(FaultSet::none(cube), cost)
    }

    /// Overrides the receive timeout the threaded executor uses to detect
    /// deadlocked programs (the frontier executors detect deadlock
    /// immediately and ignore this).
    pub fn with_recv_timeout(mut self, timeout: Duration) -> Self {
        self.recv_timeout = timeout;
        self
    }

    /// Sets the parallel executor's worker-pool size (builder style); only
    /// [`EngineKind::Par`] reads it. Defaults to the host's available
    /// parallelism. Worker count affects wall-clock only, never simulated
    /// results.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers.max(1));
        self
    }

    /// Sets the parallel executor's shard size — how many contiguous
    /// live-rank nodes form one unit of stealable work (builder style);
    /// only [`EngineKind::Par`] reads it. Defaults to an automatic size
    /// targeting ~4 shards per worker. Like the worker count, shard size
    /// affects wall-clock only, never simulated results.
    pub fn with_shard_size(mut self, shard: usize) -> Self {
        self.shard = Some(shard.max(1));
        self
    }

    /// Attaches a scheduler profiler (builder style); only
    /// [`EngineKind::Par`] reads it. The run records per-worker wall-clock
    /// telemetry into the profiler's mailbox as a
    /// [`SchedProfile`](crate::obs::sched::SchedProfile); take it with
    /// [`SchedProfiler::take`](crate::obs::sched::SchedProfiler::take)
    /// after the run. Profiling observes the host scheduler only — it
    /// never changes simulated results.
    pub fn with_sched_profiler(mut self, profiler: Arc<crate::obs::sched::SchedProfiler>) -> Self {
        self.sched_profiler = Some(profiler);
        self
    }

    /// The topology.
    pub fn cube(&self) -> Hypercube {
        self.faults.cube()
    }

    /// The fault set.
    pub fn faults(&self) -> &FaultSet {
        &self.faults
    }

    /// The cost model.
    pub fn cost_model(&self) -> CostModel {
        self.cost
    }

    /// The executor this machine runs programs on.
    pub fn kind(&self) -> EngineKind {
        self.kind
    }

    pub(super) fn faults_arc(&self) -> Arc<FaultSet> {
        Arc::clone(&self.faults)
    }

    pub(super) fn router(&self) -> RouterKind {
        self.router
    }

    pub(super) fn link_model(&self) -> LinkModel {
        self.link_model
    }

    pub(super) fn tracing(&self) -> bool {
        self.tracing
    }

    pub(super) fn sink(&self) -> Option<Arc<Mutex<dyn TraceSink>>> {
        self.sink.clone()
    }

    pub(super) fn workers(&self) -> Option<usize> {
        self.workers
    }

    pub(super) fn shard(&self) -> Option<usize> {
        self.shard
    }

    pub(super) fn sched_profiler(&self) -> Option<Arc<crate::obs::sched::SchedProfiler>> {
        self.sched_profiler.clone()
    }

    /// Runs `program` SPMD on every node for which `inputs` supplies data.
    ///
    /// `inputs[i]` is the initial local data of node `i`; nodes with `None`
    /// (faulty or deliberately idle processors) are not run and must not be
    /// addressed by the program. Returns per-node results, virtual clocks and
    /// operation counts — identical for both [`EngineKind`]s.
    ///
    /// # Panics
    /// Propagates panics from node programs (including deadlock detection)
    /// and rejects inputs assigned to faulty processors.
    pub fn run<K, T, F>(&self, inputs: Vec<Option<Vec<K>>>, program: F) -> RunOutcome<T>
    where
        K: Send,
        T: Send,
        F: AsyncFn(&mut NodeCtx<K>, Vec<K>) -> T + Sync,
    {
        match self.kind {
            EngineKind::Threaded => self.run_threaded(inputs, program),
            EngineKind::Seq => SeqEngine::from_engine(self).run(inputs, program),
            EngineKind::Par => ParEngine::from_engine(self).run(inputs, program),
        }
    }

    fn run_threaded<K, T, F>(&self, inputs: Vec<Option<Vec<K>>>, program: F) -> RunOutcome<T>
    where
        K: Send,
        T: Send,
        F: AsyncFn(&mut NodeCtx<K>, Vec<K>) -> T + Sync,
    {
        let cube = self.cube();
        validate_inputs(&self.faults, &inputs);

        // Build one bounded channel per participating node. The capacity is
        // the engine's per-node message budget, derived from the cost
        // model's communication structure: in any single algorithm phase a
        // node receives from at most `dim` distinct peers (its tree children
        // in a binomial collective, or one compare-split partner), and the
        // two-round half-exchange protocol keeps at most 2 messages per
        // peer in flight. `2 * dim + 4` therefore bounds the backlog of any
        // well-formed program; receivers drain their channel whenever they
        // block, so senders never stall against a live receiver.
        let capacity = 2 * cube.dim() + 4;
        let mut txs: Vec<Option<SyncSender<Message<K>>>> = Vec::with_capacity(cube.len());
        let mut rxs: Vec<Option<Receiver<Message<K>>>> = Vec::with_capacity(cube.len());
        for slot in &inputs {
            if slot.is_some() {
                let (tx, rx) = sync_channel(capacity);
                txs.push(Some(tx));
                rxs.push(Some(rx));
            } else {
                txs.push(None);
                rxs.push(None);
            }
        }
        let txs = Arc::new(txs);
        let gauges: Arc<Vec<InboxGauge>> =
            Arc::new((0..cube.len()).map(|_| InboxGauge::default()).collect());

        if let Some(sink) = &self.sink {
            sink.lock().expect("trace sink lock poisoned").begin(
                cube.dim(),
                &self.cost,
                self.link_model,
            );
        }

        // Under Contended the run executes uncontended-internally (real
        // channel timing cannot replay the deterministic link arbitration),
        // with events force-traced and sink records captured per node; a
        // post-pass below re-prices everything through the same
        // schedule-replay code the offline tools use.
        let contended = self.link_model == LinkModel::Contended;
        let mut outcomes: Vec<Option<NodeOutcome<T>>> = (0..cube.len()).map(|_| None).collect();
        let program = &program;

        let (traces, mut captures) = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (i, (input, rx)) in inputs.into_iter().zip(rxs).enumerate() {
                let (Some(input), Some(rx)) = (input, rx) else {
                    continue;
                };
                let txs = Arc::clone(&txs);
                let gauges = Arc::clone(&gauges);
                let faults = Arc::clone(&self.faults);
                let cost = self.cost;
                let recv_timeout = self.recv_timeout;
                let router = self.router;
                let tracing = self.tracing || contended;
                let sink = (!contended).then(|| self.sink.clone()).flatten();
                let capturing = contended && self.sink.is_some();
                let handle = scope.spawn(move || {
                    let mut ctx = NodeCtx {
                        me: NodeId::from(i),
                        cube,
                        faults,
                        cost,
                        router,
                        inner: CtxInner::Threaded(Box::new(ThreadedCtx {
                            clock: VirtualClock::new(),
                            stats: RunStats::new(),
                            rx,
                            txs,
                            pending: HashMap::new(),
                            recv_timeout,
                            trace: tracing.then(|| Vec::with_capacity(trace_capacity(cube.dim()))),
                            spans: SpanLog::new(),
                            metrics: NodeMetrics::new(cube.dim()),
                            gauges,
                            sink,
                            capture: capturing.then(Vec::new),
                            obs: metrics::global().map(|g| g.run.engine.clone()),
                        })),
                    };
                    let result = run_to_completion(program(&mut ctx, input));
                    let CtxInner::Threaded(t) = ctx.inner else {
                        unreachable!()
                    };
                    let clock = t.clock.now();
                    (
                        i,
                        NodeOutcome {
                            result,
                            clock,
                            stats: t.stats,
                            spans: t.spans.finish(clock),
                            metrics: t.metrics,
                        },
                        t.trace.unwrap_or_default(),
                        t.capture,
                    )
                });
                handles.push(handle);
            }
            let mut traces = Vec::new();
            let mut captures: Vec<(usize, Vec<CellRecord>)> = Vec::new();
            for handle in handles {
                let (i, outcome, trace, capture) = handle.join().expect("node program panicked");
                outcomes[i] = Some(outcome);
                traces.push(trace);
                if let Some(capture) = capture {
                    captures.push((i, capture));
                }
            }
            (traces, captures)
        });

        // Channel high-water marks are only known once every thread is done.
        for (i, outcome) in outcomes.iter_mut().enumerate() {
            if let Some(o) = outcome {
                o.metrics.inbox_peak = gauges[i].peak();
            }
        }

        let trace = if contended {
            self.finish_contended(cube, &mut outcomes, traces, &mut captures)
        } else {
            Trace::assemble(traces)
        };

        if let Some(sink) = &self.sink {
            let summaries: Vec<NodeSummary> = outcomes
                .iter()
                .enumerate()
                .filter_map(|(i, o)| {
                    o.as_ref().map(|o| NodeSummary {
                        node: NodeId::from(i),
                        clock: o.clock,
                        blocked_us: o.metrics.blocked_us,
                        inbox_peak: o.metrics.inbox_peak,
                    })
                })
                .collect();
            sink.lock()
                .expect("trace sink lock poisoned")
                .finish(&summaries);
        }

        RunOutcome {
            outcomes,
            trace,
            dim: cube.dim(),
            cost: self.cost,
            link_model: self.link_model,
        }
    }

    /// The threaded engine's contended post-pass: re-prices the internally
    /// uncontended run through [`reprice_full`] — the exact code the live
    /// frontier barrier and the offline repricer share — rewrites every
    /// node outcome onto the contended timeline, replaces the
    /// executor-dependent gauge peaks with the deterministic barrier
    /// reconstruction, and emits the captured sink records in canonical
    /// commit order. Returns the run's (contended-timeline) trace when
    /// tracing was requested.
    fn finish_contended<T>(
        &self,
        cube: Hypercube,
        outcomes: &mut [Option<NodeOutcome<T>>],
        traces: Vec<Vec<TraceEvent>>,
        captures: &mut Vec<(usize, Vec<CellRecord>)>,
    ) -> Trace {
        let internal_obs = RunObservation {
            dim: cube.dim(),
            cost: self.cost,
            link_model: LinkModel::Uncontended,
            key_type: None,
            trace: Trace::assemble(traces),
            nodes: outcomes
                .iter()
                .enumerate()
                .map(|(i, o)| {
                    o.as_ref().map(|o| NodeObservation {
                        node: NodeId::from(i),
                        clock: o.clock,
                        stats: o.stats,
                        spans: o.spans.clone(),
                        metrics: o.metrics.clone(),
                    })
                })
                .collect(),
        };

        if internal_obs.trace.is_empty() {
            // No events at all: contended and uncontended timelines are
            // identical (no messages crossed a link). Flush any captured
            // span records as-is, in node order.
            if let Some(sink) = &self.sink {
                let mut sink = sink.lock().expect("trace sink lock poisoned");
                for (i, records) in captures.drain(..) {
                    for rec in records {
                        match rec {
                            CellRecord::Event(ev) => sink.event(&ev),
                            CellRecord::Span { phase, time } => {
                                sink.span(NodeId::from(i), phase, time)
                            }
                        }
                    }
                }
            }
            return Trace::default();
        }

        let rp = reprice_full(&internal_obs, self.cost, LinkModel::Contended)
            .expect("trace is non-empty");
        let peaks = reconstruct_inbox_peaks(internal_obs.trace.events(), &rp.rounds, cube.len());
        for (i, o) in outcomes.iter_mut().enumerate() {
            if let (Some(o), Some(nb)) = (o.as_mut(), rp.obs.nodes[i].as_ref()) {
                o.clock = nb.clock;
                o.spans = nb.spans.clone();
                o.metrics = nb.metrics.clone();
                o.metrics.inbox_peak = peaks[i];
            }
        }

        if let Some(sink) = &self.sink {
            // k-th event of node n in the assembled trace is node n's k-th
            // captured event: the stable (time, node) sort preserves each
            // node's program order (per-node times are non-decreasing).
            let events = internal_obs.trace.events();
            let mut node_events: Vec<Vec<usize>> = vec![Vec::new(); cube.len()];
            for (idx, e) in events.iter().enumerate() {
                node_events[e.node.index()].push(idx);
            }
            // A span boundary is flushed at the barrier of the poll that
            // produced it — the round of the preceding event (every poll
            // after round 0 begins by completing a receive, so a span can
            // only precede all events of its poll in round 0).
            let mut out: Vec<(u32, usize, CellRecord)> = Vec::new();
            for (n, records) in captures.drain(..) {
                let mut k = 0usize;
                let mut round = 0u32;
                for rec in records {
                    match rec {
                        CellRecord::Event(_) => {
                            let idx = node_events[n][k];
                            k += 1;
                            round = rp.rounds[idx];
                            out.push((round, n, CellRecord::Event(rp.new_events[idx])));
                        }
                        CellRecord::Span { phase, time } => {
                            out.push((
                                round,
                                n,
                                CellRecord::Span {
                                    phase,
                                    time: rp.map_time(n, time),
                                },
                            ));
                        }
                    }
                }
            }
            out.sort_by_key(|&(round, node, _)| (round, node));
            let mut sink = sink.lock().expect("trace sink lock poisoned");
            for (_, n, rec) in out {
                match rec {
                    CellRecord::Event(ev) => sink.event(&ev),
                    CellRecord::Span { phase, time } => sink.span(NodeId::from(n), phase, time),
                }
            }
        }

        if self.tracing {
            rp.obs.trace
        } else {
            Trace::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultModel;

    fn engine(n: usize) -> Engine {
        Engine::fault_free(Hypercube::new(n), CostModel::paper_form())
    }

    fn all_engines(n: usize) -> [Engine; 3] {
        [
            engine(n).with_engine(EngineKind::Seq),
            engine(n).with_engine(EngineKind::Threaded),
            // 2 workers so the pool protocol is exercised even on 1-core CI
            engine(n).with_engine(EngineKind::Par).with_workers(2),
        ]
    }

    /// Inputs giving every node one key equal to its own address.
    fn identity_inputs(n: usize) -> Vec<Option<Vec<u32>>> {
        (0..1usize << n).map(|i| Some(vec![i as u32])).collect()
    }

    #[test]
    fn ping_pong_between_neighbors() {
        for eng in all_engines(1) {
            let out = eng.run(identity_inputs(1), async |ctx, data| {
                let partner = ctx.me().neighbor(0);
                let theirs = ctx.exchange(partner, Tag::new(0), data).await;
                theirs[0]
            });
            let results = out.into_results();
            assert_eq!(results, vec![(NodeId::new(0), 1), (NodeId::new(1), 0)]);
        }
    }

    #[test]
    fn dimension_sweep_total_exchange() {
        // All-to-all reduction by sweeping dimensions: every node ends up
        // with the sum over the whole cube.
        let n = 4;
        for eng in all_engines(n) {
            let out = eng.run(identity_inputs(n), async |ctx, data| {
                let mut acc = data[0];
                for d in 0..ctx.cube().dim() {
                    let theirs = ctx
                        .exchange(ctx.me().neighbor(d), Tag::new(d as u64), vec![acc])
                        .await;
                    acc += theirs[0];
                }
                acc
            });
            let expected: u32 = (0..16).sum();
            for (_, v) in out.into_results() {
                assert_eq!(v, expected);
            }
        }
    }

    #[test]
    fn virtual_time_is_deterministic_across_runs_and_engines() {
        let n = 4;
        let run = |kind: EngineKind| {
            let eng = engine(n).with_engine(kind);
            let out = eng.run(identity_inputs(n), async |ctx, data| {
                let mut acc = data;
                for d in 0..ctx.cube().dim() {
                    let theirs = ctx
                        .exchange(ctx.me().neighbor(d), Tag::new(d as u64), acc.clone())
                        .await;
                    ctx.charge_comparisons(acc.len() + theirs.len());
                    acc.extend(theirs);
                    acc.sort_unstable();
                }
                acc.len()
            });
            let clocks: Vec<f64> = out.outcomes().iter().flatten().map(|o| o.clock).collect();
            (out.turnaround(), clocks)
        };
        let (t1, c1) = run(EngineKind::Seq);
        let (t2, c2) = run(EngineKind::Seq);
        assert_eq!(t1, t2);
        assert_eq!(c1, c2);
        assert!(t1 > 0.0);
        // …and the threaded executor computes the exact same virtual times.
        let (t3, c3) = run(EngineKind::Threaded);
        assert_eq!(t1, t3);
        assert_eq!(c1, c3);
    }

    #[test]
    fn clock_advances_with_message_size_and_hops() {
        // node 0 sends k elements to the opposite corner (n hops); the
        // receiver's clock must be ≥ k * n * t_sr.
        let n = 3;
        let k = 100usize;
        for eng in all_engines(n) {
            let mut inputs: Vec<Option<Vec<u32>>> = vec![None; 8];
            inputs[0] = Some((0..k as u32).collect());
            inputs[7] = Some(vec![]);
            let out = eng.run(inputs, async |ctx, data| {
                if ctx.me() == NodeId::new(0) {
                    ctx.send(NodeId::new(7), Tag::new(1), data);
                    0.0
                } else {
                    let got = ctx.recv(NodeId::new(0), Tag::new(1)).await;
                    assert_eq!(got.len(), k);
                    ctx.clock()
                }
            });
            let t_sr = eng.cost_model().t_sr;
            let receiver_clock = out.node(NodeId::new(7)).unwrap().result;
            // sender pays 1 hop of port time, receiver syncs to sent_at + 3 hops
            let expected = (k as f64) * t_sr + (k as f64) * 3.0 * t_sr;
            assert!(
                (receiver_clock - expected).abs() < 1e-9,
                "clock {receiver_clock} vs expected {expected}"
            );
            let stats = out.total_stats();
            assert_eq!(stats.messages, 1);
            assert_eq!(stats.elements_sent, k as u64);
            assert_eq!(stats.element_hops, (k * 3) as u64);
            assert_eq!(stats.max_hops, 3);
        }
    }

    #[test]
    fn total_fault_model_charges_detour_hops() {
        // With node 1 totally faulty, 0 → 3 must detour (still 2 hops in Q2?
        // no: Q2 path 0→2→3 avoids 1 and has 2 hops). Use Q3 and kill both
        // intermediates 1 and 2 so the route 0→3 needs 4 hops.
        let faults = FaultSet::from_raw(Hypercube::new(3), &[1, 2]).with_model(FaultModel::Total);
        let eng = Engine::new(faults, CostModel::paper_form());
        let mut inputs: Vec<Option<Vec<u32>>> = vec![None; 8];
        inputs[0] = Some(vec![42]);
        inputs[3] = Some(vec![]);
        let out = eng.run(inputs, async |ctx, _data| {
            if ctx.me() == NodeId::new(0) {
                ctx.send(NodeId::new(3), Tag::new(9), vec![7]);
            } else {
                let got = ctx.recv(NodeId::new(0), Tag::new(9)).await;
                assert_eq!(got, vec![7]);
            }
        });
        assert_eq!(out.total_stats().max_hops, 4);
    }

    #[test]
    fn partial_fault_model_relays_through_faults() {
        let faults = FaultSet::from_raw(Hypercube::new(3), &[1, 2]).with_model(FaultModel::Partial);
        let eng = Engine::new(faults, CostModel::paper_form());
        let mut inputs: Vec<Option<Vec<u32>>> = vec![None; 8];
        inputs[0] = Some(vec![]);
        inputs[3] = Some(vec![]);
        let out = eng.run(inputs, async |ctx, _| {
            if ctx.me() == NodeId::new(0) {
                ctx.send(NodeId::new(3), Tag::new(9), vec![7u32]);
            } else {
                ctx.recv(NodeId::new(0), Tag::new(9)).await;
            }
        });
        assert_eq!(
            out.total_stats().max_hops,
            2,
            "e-cube path relays via fault"
        );
    }

    #[test]
    fn out_of_order_tags_are_buffered() {
        for eng in all_engines(1) {
            let out = eng.run(identity_inputs(1), async |ctx, _| {
                let partner = ctx.me().neighbor(0);
                if ctx.me() == NodeId::new(0) {
                    // send in one order…
                    ctx.send(partner, Tag::new(1), vec![10u32]);
                    ctx.send(partner, Tag::new(2), vec![20u32]);
                    0
                } else {
                    // …receive in the other
                    let b = ctx.recv(NodeId::new(0), Tag::new(2)).await;
                    let a = ctx.recv(NodeId::new(0), Tag::new(1)).await;
                    a[0] + b[0]
                }
            });
            assert_eq!(out.node(NodeId::new(1)).unwrap().result, 30);
        }
    }

    #[test]
    fn comparisons_charge_clock_and_stats() {
        for eng in all_engines(0) {
            let out = eng.run(vec![Some(Vec::<u32>::new())], async |ctx, _| {
                ctx.charge_comparisons(17);
                ctx.charge_compute(5.0);
                ctx.clock()
            });
            let o = out.node(NodeId::new(0)).unwrap();
            assert_eq!(o.result, 17.0 * eng.cost_model().t_c + 5.0);
            assert_eq!(o.stats.comparisons, 17);
        }
    }

    #[test]
    fn faulty_nodes_cannot_receive_inputs() {
        for kind in [EngineKind::Seq, EngineKind::Threaded] {
            let faults = FaultSet::from_raw(Hypercube::new(2), &[1]);
            let eng = Engine::new(faults, CostModel::paper_form()).with_engine(kind);
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let mut inputs: Vec<Option<Vec<u32>>> = vec![None; 4];
                inputs[1] = Some(vec![1]);
                eng.run(inputs, async |_ctx, _d| 0u32);
            }));
            assert!(result.is_err());
        }
    }

    #[test]
    fn tracing_records_sends_recvs_and_compute() {
        use super::super::trace::TraceKind;
        for eng in all_engines(1) {
            let eng = eng.with_tracing();
            let out = eng.run(identity_inputs(1), async |ctx, data| {
                ctx.charge_comparisons(3);
                let partner = ctx.me().neighbor(0);
                let theirs = ctx.exchange(partner, Tag::new(4), data).await;
                theirs[0]
            });
            let trace = out.trace();
            assert!(!trace.is_empty());
            // 2 sends + 2 recvs + 2 computes
            assert_eq!(trace.len(), 6);
            assert_eq!(trace.sends().count(), 2);
            // timestamps are non-decreasing
            assert!(trace.events().windows(2).all(|w| w[0].time <= w[1].time));
            // every send has a matching recv with the same element count
            for s in trace.sends() {
                let TraceKind::Send { to, elements, .. } = s.kind else {
                    unreachable!()
                };
                assert!(trace.for_node(to).any(|e| matches!(
                    e.kind,
                    TraceKind::Recv { from, elements: el, .. } if from == s.node && el == elements
                )));
            }
        }
    }

    #[test]
    fn tracing_disabled_by_default() {
        let eng = Engine::fault_free(Hypercube::new(1), CostModel::paper_form());
        let out = eng.run(identity_inputs(1), async |ctx, data| {
            ctx.exchange(ctx.me().neighbor(0), Tag::new(4), data).await
        });
        assert!(out.trace().is_empty());
    }

    #[test]
    fn recv_timeout_detects_deadlock() {
        // Threaded: the channel read times out. Seq: the scheduler sees no
        // runnable node and panics immediately.
        for eng in all_engines(0) {
            let eng = eng.with_recv_timeout(Duration::from_millis(100));
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                eng.run(vec![Some(vec![0u32])], async |ctx, _| {
                    // nobody ever sends this: the engine must panic, not hang
                    ctx.recv(ctx.me(), Tag::new(1)).await
                });
            }));
            assert!(result.is_err(), "deadlocked program must panic");
        }
    }

    #[test]
    fn idle_nodes_do_not_run() {
        for eng in all_engines(2) {
            let mut inputs: Vec<Option<Vec<u32>>> = vec![None; 4];
            inputs[2] = Some(vec![]);
            let out = eng.run(inputs, async |ctx, _| ctx.me().raw());
            assert!(out.node(NodeId::new(0)).is_none());
            assert!(out.node(NodeId::new(1)).is_none());
            assert_eq!(out.node(NodeId::new(2)).unwrap().result, 2);
            assert!(out.node(NodeId::new(3)).is_none());
            assert_eq!(out.into_results().len(), 1);
        }
    }

    #[test]
    fn engines_agree_on_trace_clocks_and_stats() {
        // A busier program: binomial-tree gather at node 0 on Q3.
        let n = 3;
        let run = |kind: EngineKind| {
            engine(n)
                .with_engine(kind)
                .with_tracing()
                .run(identity_inputs(n), async |ctx, data| {
                    let me = ctx.me().raw();
                    let mut acc = data;
                    for d in 0..ctx.cube().dim() {
                        if me & ((1 << (d + 1)) - 1) == 0 {
                            let child = ctx.me().neighbor(d);
                            let theirs = ctx.recv(child, Tag::new(d as u64)).await;
                            ctx.charge_comparisons(theirs.len());
                            acc.extend(theirs);
                        } else if me & ((1 << d) - 1) == 0 {
                            ctx.send(ctx.me().neighbor(d), Tag::new(d as u64), acc);
                            return Vec::new();
                        }
                    }
                    acc
                })
        };
        let a = run(EngineKind::Seq);
        let b = run(EngineKind::Threaded);
        assert_eq!(a.node(NodeId::new(0)).unwrap().result.len(), 8);
        for (x, y) in a.outcomes().iter().zip(b.outcomes()) {
            match (x, y) {
                (None, None) => {}
                (Some(x), Some(y)) => {
                    assert_eq!(x.result, y.result);
                    assert_eq!(x.clock, y.clock);
                    assert_eq!(x.stats, y.stats);
                }
                _ => panic!("participation differs between engines"),
            }
        }
        assert_eq!(a.trace().events(), b.trace().events());
    }
}
