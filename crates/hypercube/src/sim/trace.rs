//! Event tracing for simulated runs.
//!
//! When enabled on the [`super::Engine`], every send, receive and local
//! computation is recorded with its virtual timestamp, giving a space-time
//! view of the algorithm (see the `message_trace` example for a textual
//! rendering). Tracing is off by default — it allocates per event.

use crate::address::NodeId;
use crate::sim::Tag;
use serde::{Deserialize, Serialize};

/// What happened.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub enum TraceKind {
    /// A message left this node.
    Send {
        /// Destination.
        to: NodeId,
        /// Keys carried.
        elements: usize,
        /// Links crossed.
        hops: u32,
    },
    /// A message was consumed by this node.
    Recv {
        /// Origin.
        from: NodeId,
        /// Keys carried.
        elements: usize,
        /// Time the message spent queued behind busy links, µs — always
        /// `0.0` under [`super::LinkModel::Uncontended`].
        wait: f64,
    },
    /// Local comparisons were charged.
    Compute {
        /// Number of key comparisons.
        comparisons: usize,
    },
}

/// One traced event.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct TraceEvent {
    /// The node's virtual clock *after* the event, µs.
    pub time: f64,
    /// The node the event happened on.
    pub node: NodeId,
    /// The message tag (zero tag for compute events).
    pub tag: Tag,
    /// The event itself.
    pub kind: TraceKind,
}

/// A completed run's trace, ordered by time (ties by node address).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Builds a trace from per-node event lists.
    pub(crate) fn assemble(per_node: Vec<Vec<TraceEvent>>) -> Self {
        let mut events: Vec<TraceEvent> = per_node.into_iter().flatten().collect();
        events.sort_by(|a, b| {
            a.time
                .total_cmp(&b.time)
                .then(a.node.raw().cmp(&b.node.raw()))
        });
        Trace { events }
    }

    /// Builds a trace from an already time-ordered event list — the entry
    /// point for deserializers (see `obs::json::trace_from_json`). Events
    /// are re-sorted defensively so downstream invariants hold even if the
    /// input was shuffled.
    pub fn from_events(mut events: Vec<TraceEvent>) -> Self {
        events.sort_by(|a, b| {
            a.time
                .total_cmp(&b.time)
                .then(a.node.raw().cmp(&b.node.raw()))
        });
        Trace { events }
    }

    /// All events, time-ordered.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty (tracing disabled or nothing happened).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events involving one node.
    pub fn for_node(&self, node: NodeId) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.node == node)
    }

    /// The send events, in time order.
    pub fn sends(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, TraceKind::Send { .. }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assemble_orders_by_time_then_node() {
        let mk = |time, node| TraceEvent {
            time,
            node: NodeId::new(node),
            tag: Tag::new(0),
            kind: TraceKind::Compute { comparisons: 1 },
        };
        let trace = Trace::assemble(vec![
            vec![mk(3.0, 1), mk(1.0, 1)],
            vec![mk(1.0, 0), mk(2.0, 0)],
        ]);
        let order: Vec<(f64, u32)> = trace
            .events()
            .iter()
            .map(|e| (e.time, e.node.raw()))
            .collect();
        assert_eq!(order, vec![(1.0, 0), (1.0, 1), (2.0, 0), (3.0, 1)]);
        assert_eq!(trace.len(), 4);
        assert!(!trace.is_empty());
        assert_eq!(trace.for_node(NodeId::new(0)).count(), 2);
    }
}
