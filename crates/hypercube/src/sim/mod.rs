//! The simulated message-passing multicomputer.
//!
//! Algorithms are written SPMD-style: the same *node program* runs on every
//! normal processor, communicating through the [`Comm`] handle. The
//! [`engine::Engine`] executes one OS thread per simulated processor with
//! crossbeam channels as the interconnect and an e-cube router (or a
//! fault-avoiding router under the total-fault model) charging the paper's
//! cost model per element and hop.
//!
//! ## Deterministic virtual time
//!
//! Every node carries a [`crate::cost::VirtualClock`]. Local computation
//! advances only the local clock; a message stamps the sender's clock at send
//! time and the receiver synchronizes to `max(local, sent_at + transfer)`.
//! Because the algorithms' communication patterns are data-independent, the
//! resulting virtual times are a deterministic function of the inputs — they
//! do not depend on OS scheduling — so simulated "execution times" (Figure 7)
//! are exactly reproducible.

pub mod engine;
pub mod trace;

pub use engine::{Engine, NodeCtx, NodeOutcome, RouterKind, RunOutcome};
pub use trace::{Trace, TraceEvent, TraceKind};

use crate::address::NodeId;
use crate::cost::CostModel;
use crate::fault::FaultSet;
use crate::topology::Hypercube;

/// A message tag disambiguating algorithm phases.
///
/// Receives are addressed by `(source, tag)`; messages from the same source
/// with different tags can arrive in any order and are buffered until asked
/// for. Build tags with [`Tag::new`] or [`Tag::phase`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default, serde::Serialize, serde::Deserialize)]
pub struct Tag(pub u64);

impl Tag {
    /// A tag from a raw value.
    pub const fn new(v: u64) -> Self {
        Tag(v)
    }

    /// A structured tag from a phase id and up to two loop indices —
    /// convenient for the bitonic double loop.
    pub const fn phase(phase: u16, i: u16, j: u16) -> Self {
        Tag(((phase as u64) << 32) | ((i as u64) << 16) | j as u64)
    }
}

/// The communication and accounting interface a node program runs against.
///
/// All sorting algorithms in the `ftsort` crate are generic over this trait,
/// so they can run on the real threaded engine or on any future executor.
pub trait Comm<K> {
    /// This processor's physical address.
    fn me(&self) -> NodeId;

    /// The topology being simulated.
    fn cube(&self) -> Hypercube;

    /// The fault set in force (processors this program must not address).
    fn faults(&self) -> &FaultSet;

    /// The cost model used for accounting.
    fn cost_model(&self) -> CostModel;

    /// Sends `data` to `dst` (non-blocking); the router charges
    /// `hops(me, dst)` links per element.
    fn send(&mut self, dst: NodeId, tag: Tag, data: Vec<K>);

    /// Receives the message with tag `tag` from `src`, blocking until it
    /// arrives. Messages with other `(src, tag)` pairs are buffered.
    fn recv(&mut self, src: NodeId, tag: Tag) -> Vec<K>;

    /// Full-duplex exchange with a partner: send ours, receive theirs.
    fn exchange(&mut self, partner: NodeId, tag: Tag, data: Vec<K>) -> Vec<K> {
        self.send(partner, tag, data);
        self.recv(partner, tag)
    }

    /// Charges `count` key comparisons to the local clock and statistics.
    fn charge_comparisons(&mut self, count: usize);

    /// Charges an arbitrary local computation cost (µs) to the local clock,
    /// e.g. the paper's heapsort formula.
    fn charge_compute(&mut self, cost: f64);

    /// The local virtual clock, µs.
    fn clock(&self) -> f64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_phase_packs_fields_disjointly() {
        let a = Tag::phase(1, 2, 3);
        let b = Tag::phase(1, 3, 2);
        let c = Tag::phase(2, 2, 3);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
        assert_eq!(Tag::phase(0, 0, 0), Tag::new(0));
        assert_eq!(Tag::phase(0, 0, 5), Tag::new(5));
        assert_eq!(Tag::phase(0, 1, 0), Tag::new(1 << 16));
    }
}
