//! The simulated message-passing multicomputer.
//!
//! Algorithms are written SPMD-style: the same *node program* runs on every
//! normal processor, communicating through the [`Comm`] handle. Node
//! programs are `async`: a blocked receive suspends the node, which lets
//! one executor run nodes on OS threads ([`engine::Engine`] with
//! [`EngineKind::Threaded`]), another schedule all of them cooperatively
//! on a single thread ([`sequential::SeqEngine`], the default), and a
//! third share the ready frontier across a fixed worker pool
//! ([`par::ParEngine`]) — same program, identical simulated results.
//!
//! ## Deterministic virtual time
//!
//! Every node carries a [`crate::cost::VirtualClock`]. Local computation
//! advances only the local clock; a message stamps the sender's clock at send
//! time and the receiver synchronizes to `max(local, sent_at + transfer)`.
//! Because the algorithms' communication patterns are data-independent, the
//! resulting virtual times are a deterministic function of the inputs — they
//! do not depend on OS scheduling *or on the executor* — so simulated
//! "execution times" (Figure 7) are exactly reproducible, and every engine
//! produces byte-identical outputs, clocks, statistics and traces (asserted
//! by `tests/engine_diff.rs` in the workspace root).

pub mod engine;
mod frontier;
pub mod par;
pub mod pool;
pub mod sequential;
pub mod trace;
mod ws;

pub use engine::{Engine, NodeCtx, NodeOutcome, RouterKind, RunOutcome};
pub use par::ParEngine;
pub use pool::{BufferPool, PoolCounters, PoolHandle, PoolStats};
pub use sequential::SeqEngine;
pub use trace::{Trace, TraceEvent, TraceKind};

use crate::address::NodeId;
use crate::cost::CostModel;
use crate::fault::FaultSet;
use crate::topology::Hypercube;

/// Which executor runs the node programs.
#[derive(
    Clone, Copy, PartialEq, Eq, Hash, Debug, Default, serde::Serialize, serde::Deserialize,
)]
pub enum EngineKind {
    /// One OS thread per simulated processor, bounded channels as the
    /// interconnect. Real concurrency; wall-clock cost grows with the
    /// machine size (a `Q_10` run schedules 1024 kernel threads).
    Threaded,
    /// Single-threaded run-to-completion cooperative scheduler
    /// ([`sequential::SeqEngine`]): the ready frontier of node programs is
    /// polled round by round, with sends delivered at a deterministic
    /// barrier between rounds. No OS threads, no contended synchronization
    /// on the hot path — the default.
    #[default]
    Seq,
    /// Work-stealing worker pool ([`par::ParEngine`]): the same
    /// frontier/barrier schedule as [`EngineKind::Seq`], with each round's
    /// runnable nodes sharded and claimed from per-worker Chase–Lev deques
    /// by `available_parallelism` workers (override with
    /// [`engine::Engine::with_workers`]), and delivery fanned out by
    /// destination shard. Byte-identical to `Seq` — results, reports, run
    /// files and critical paths — by construction.
    Par,
}

impl EngineKind {
    /// Parses the CLI spelling (`threaded` | `seq` | `par`).
    pub fn parse(s: &str) -> Option<EngineKind> {
        match s {
            "threaded" => Some(EngineKind::Threaded),
            "seq" | "sequential" => Some(EngineKind::Seq),
            "par" | "parallel" => Some(EngineKind::Par),
            _ => None,
        }
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineKind::Threaded => write!(f, "threaded"),
            EngineKind::Seq => write!(f, "seq"),
            EngineKind::Par => write!(f, "par"),
        }
    }
}

/// How messages are charged for the links they cross.
///
/// The default reproduces the paper's closed-form analysis: every link has
/// infinite capacity, so a message's arrival is `sent_at + transfer` no
/// matter what else is in flight. [`LinkModel::Contended`] instead serializes
/// the messages of each *directed link* (one per `(node, dimension)` pair):
/// a message must wait for the link's `busy_until` clock before its transfer
/// starts, and the wait is accounted separately from the transfer in every
/// trace record, report and Perfetto export.
///
/// Contended arbitration is deterministic: links are acquired at the round
/// barrier in (round, node-id, program-order) order — the same order the
/// [`frontier`](self) core already commits sends in — so virtual time remains
/// a pure function of the input on every engine (see DESIGN §6).
#[derive(
    Clone, Copy, PartialEq, Eq, Hash, Debug, Default, serde::Serialize, serde::Deserialize,
)]
pub enum LinkModel {
    /// Infinite link capacity: arrival = `sent_at + transfer`. The paper's
    /// model and the default — all baselines are priced under it.
    #[default]
    Uncontended,
    /// One message at a time per directed link; queueing waits are recorded
    /// per message and surfaced as `wait` in traces, reports and run files.
    Contended,
}

impl LinkModel {
    /// Parses the CLI spelling (`uncontended` | `contended`).
    pub fn parse(s: &str) -> Option<LinkModel> {
        match s {
            "uncontended" | "none" => Some(LinkModel::Uncontended),
            "contended" | "queued" => Some(LinkModel::Contended),
            _ => None,
        }
    }
}

impl std::fmt::Display for LinkModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinkModel::Uncontended => write!(f, "uncontended"),
            LinkModel::Contended => write!(f, "contended"),
        }
    }
}

/// A message tag disambiguating algorithm phases.
///
/// Receives are addressed by `(source, tag)`; messages from the same source
/// with different tags can arrive in any order and are buffered until asked
/// for. Build tags with [`Tag::new`] or [`Tag::phase`].
#[derive(
    Clone, Copy, PartialEq, Eq, Hash, Debug, Default, serde::Serialize, serde::Deserialize,
)]
pub struct Tag(pub u64);

impl Tag {
    /// A tag from a raw value.
    pub const fn new(v: u64) -> Self {
        Tag(v)
    }

    /// A structured tag from a phase id and up to two loop indices —
    /// convenient for the bitonic double loop.
    pub const fn phase(phase: u16, i: u16, j: u16) -> Self {
        Tag(((phase as u64) << 32) | ((i as u64) << 16) | j as u64)
    }
}

/// The communication and accounting interface a node program runs against.
///
/// All sorting algorithms in the `ftsort` crate are generic over this trait,
/// so they run unmodified on the threaded MIMD engine and on the sequential
/// event-driven engine. `recv` (and anything built on it) is `async`: the
/// threaded engine blocks inside the poll, the sequential engine suspends
/// the node program and resumes it when the message arrives.
#[allow(async_fn_in_trait)] // simulator-internal trait; no Send futures needed
pub trait Comm<K> {
    /// This processor's physical address.
    fn me(&self) -> NodeId;

    /// The topology being simulated.
    fn cube(&self) -> Hypercube;

    /// The fault set in force (processors this program must not address).
    fn faults(&self) -> &FaultSet;

    /// The cost model used for accounting.
    fn cost_model(&self) -> CostModel;

    /// Sends `data` to `dst` (non-blocking); the router charges
    /// `hops(me, dst)` links per element. Ownership of the payload moves to
    /// the receiver — on the sequential engine this is a pointer handoff,
    /// no copy.
    fn send(&mut self, dst: NodeId, tag: Tag, data: Vec<K>);

    /// Receives the message with tag `tag` from `src`, suspending until it
    /// arrives. Messages with other `(src, tag)` pairs are buffered.
    async fn recv(&mut self, src: NodeId, tag: Tag) -> Vec<K>;

    /// Full-duplex exchange with a partner: send ours, receive theirs.
    async fn exchange(&mut self, partner: NodeId, tag: Tag, data: Vec<K>) -> Vec<K> {
        self.send(partner, tag, data);
        self.recv(partner, tag).await
    }

    /// Opens an observability span for `phase` (the [`Tag::phase`] `u16`
    /// namespace) at the current virtual clock. Spans nest; close with
    /// [`span_exit`](Comm::span_exit). Free when the engine records no
    /// observations; see [`crate::obs`].
    fn span_enter(&mut self, phase: u16);

    /// Closes the innermost open span at the current virtual clock.
    fn span_exit(&mut self);

    /// Charges `count` key comparisons to the local clock and statistics.
    fn charge_comparisons(&mut self, count: usize);

    /// Charges an arbitrary local computation cost (µs) to the local clock,
    /// e.g. the paper's heapsort formula.
    fn charge_compute(&mut self, cost: f64);

    /// The local virtual clock, µs.
    fn clock(&self) -> f64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_phase_packs_fields_disjointly() {
        let a = Tag::phase(1, 2, 3);
        let b = Tag::phase(1, 3, 2);
        let c = Tag::phase(2, 2, 3);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
        assert_eq!(Tag::phase(0, 0, 0), Tag::new(0));
        assert_eq!(Tag::phase(0, 0, 5), Tag::new(5));
        assert_eq!(Tag::phase(0, 1, 0), Tag::new(1 << 16));
    }

    #[test]
    fn distinct_phase_triples_never_alias() {
        // Collision safety over the index ranges the algorithms actually
        // use: phases 0..=20 plus the step-8 namespaces around 100 and 612,
        // loop indices up to 16, and the u16::MAX marker reverse_windows
        // uses. Any alias would let one substage consume another's message.
        let mut seen = std::collections::HashMap::new();
        let phases: Vec<u16> = (0..=20)
            .chain(100..=116)
            .chain(612..=628)
            .chain([500, 501, u16::MAX])
            .collect();
        let idxs: Vec<u16> = (0..=16).chain([u16::MAX]).collect();
        for &p in &phases {
            for &i in &idxs {
                for &j in &idxs {
                    let tag = Tag::phase(p, i, j);
                    if let Some(prev) = seen.insert(tag, (p, i, j)) {
                        panic!("{:?} aliases {:?} at {tag:?}", (p, i, j), prev);
                    }
                }
            }
        }
    }

    #[test]
    fn phase_tags_leave_protocol_round_bits_clear() {
        // compare_split_remote reserves the top two tag bits for its rounds
        let t = Tag::phase(u16::MAX, u16::MAX, u16::MAX);
        assert_eq!(t.0 >> 62, 0);
    }

    #[test]
    fn link_model_parses_cli_spellings() {
        assert_eq!(LinkModel::parse("contended"), Some(LinkModel::Contended));
        assert_eq!(LinkModel::parse("queued"), Some(LinkModel::Contended));
        assert_eq!(
            LinkModel::parse("uncontended"),
            Some(LinkModel::Uncontended)
        );
        assert_eq!(LinkModel::parse("none"), Some(LinkModel::Uncontended));
        assert_eq!(LinkModel::parse("infinite"), None);
        assert_eq!(LinkModel::Contended.to_string(), "contended");
        assert_eq!(LinkModel::Uncontended.to_string(), "uncontended");
        assert_eq!(LinkModel::default(), LinkModel::Uncontended);
    }

    #[test]
    fn engine_kind_parses_cli_spellings() {
        assert_eq!(EngineKind::parse("threaded"), Some(EngineKind::Threaded));
        assert_eq!(EngineKind::parse("seq"), Some(EngineKind::Seq));
        assert_eq!(EngineKind::parse("sequential"), Some(EngineKind::Seq));
        assert_eq!(EngineKind::parse("par"), Some(EngineKind::Par));
        assert_eq!(EngineKind::parse("parallel"), Some(EngineKind::Par));
        assert_eq!(EngineKind::parse("fast"), None);
        assert_eq!(EngineKind::Threaded.to_string(), "threaded");
        assert_eq!(EngineKind::Seq.to_string(), "seq");
        assert_eq!(EngineKind::Par.to_string(), "par");
        assert_eq!(EngineKind::default(), EngineKind::Seq);
    }
}
