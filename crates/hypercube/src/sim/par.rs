//! The parallel frontier engine: a work-stealing scheduler executes each
//! round's ready frontier — and the round's commit — concurrently, with the
//! barrier/commit discipline from [`super::frontier`] keeping every
//! observable byte-identical to the sequential engine.
//!
//! ## Execution model
//!
//! Participating nodes are grouped into **shards** of contiguous live-rank
//! nodes (so each shard covers an ascending node-id range); the shard is
//! the unit of scheduling and of stealing. Every worker owns a vendored
//! Chase–Lev deque ([`super::ws::WsDeque`]); at each phase a worker pushes
//! its *affine* shards (shard id modulo pool size) onto its own deque, then
//! drains it LIFO and steals FIFO from its peers once empty — so load
//! imbalance (e.g. one shard full of heavy merge phases) migrates to idle
//! workers instead of stalling the round. Phases meet at a sense-reversing
//! barrier ([`super::ws::SenseBarrier`]); a worker panic poisons the
//! barrier so the pool unwinds and `thread::scope` re-raises the original
//! payload. Each round is:
//!
//! 1. **Poll** (parallel): claimed shard by claimed shard, poll every
//!    runnable node once. Under the uncontended link model with no sink
//!    attached, the claimant also moves each polled node's outbox into an
//!    `S × S` bin matrix — `bins[src_shard][dst_shard]` — in (ascending
//!    node, program) order.
//! 2. **Serial flush** (coordinator only, and only when a [`TraceSink`] is
//!    attached or links are contended): walk the round's ran nodes in
//!    ascending id order, flush their buffered records to the sink and
//!    price their messages through the [`LinkLedger`] — both are global
//!    sequencing decisions, so they stay a single-threaded pass in exactly
//!    the sequential engine's order. (Link pricing cannot fan out by
//!    destination: two messages to different destinations can contend for
//!    the same directed link, so the arbitration order is global, not
//!    per-partition.)
//! 3. **Deliver + wake** (parallel): shards are claimed again; the claimant
//!    of shard `d` drains bin column `bins[0..S][d]` in ascending source
//!    shard order into its nodes' inboxes, then prunes finished nodes and
//!    wakes those whose awaited `(src, tag)` message arrived, forming the
//!    next frontier.
//!
//! During the poll phase a node's cell is touched only by its shard's
//! claimant; during delivery only by its destination shard's claimant —
//! every lock is uncontended, and warm rounds allocate nothing (deque
//! rings, bins, frontier vectors and the futures themselves are all
//! recycled; see `crates/hypercube/tests/alloc_free.rs`).
//!
//! ## Why this is deterministic
//!
//! A round's sends are invisible until its barrier, so the members of one
//! frontier are mutually independent: polling them on any worker in any
//! steal order yields the same per-node clocks, stats, spans and trace
//! events. Delivery is deterministic because the bin matrix preserves
//! canonical order per destination: within `bins[s][d]` messages sit in
//! (ascending source node, program) order — shards are contiguous ascending
//! ranges, and the poll loop walks each claimed shard's nodes in ascending
//! id — and the delivery phase drains sources in ascending shard order, so
//! every inbox receives exactly the sequence the sequential committer would
//! have produced, giving the same FIFO receive order and the same
//! `inbox_peak`. Record flushing and link pricing are global orders and run
//! single-threaded (phase 2) in the sequential engine's exact sequence.
//! The three-way differential tests (`tests/engine_diff.rs`,
//! `tests/ws_stress.rs`, `tests/obs_invariants.rs`) pin this: results,
//! `RunReport` JSON, run files, Perfetto exports and critical paths match
//! [`SeqEngine`] byte for byte at every worker count and shard size.
//!
//! ## Futures migrate between workers
//!
//! Work stealing means a node's suspended future can resume on a different
//! worker than the one that created it. Stable Rust cannot bound the
//! return type of an `AsyncFn` with `Send`, so the engine wraps each task
//! in [`NodeTask`], which asserts transferability with an
//! `unsafe impl Send`. The contract (upheld by every node program in this
//! workspace, all of which only hold `K: Send` data and the `NodeCtx`
//! across await points): node programs must not hold thread-affine state —
//! `Rc`, `MutexGuard`s, thread-local handles — across an `.await`.
//!
//! [`SeqEngine`]: super::sequential::SeqEngine
//! [`TraceSink`]: crate::obs::sink::TraceSink
//! [`LinkLedger`]: crate::obs::schedule::LinkLedger

use super::engine::{validate_inputs, Engine, NodeCtx, RunOutcome};
use super::frontier::{
    build_cells, collect_run, deadlock_panic, flush_records, CellCtx, CellRecord, SharedCell,
    SimMessage,
};
use super::ws::{SenseBarrier, ShardSlot, WsDeque};
use crate::address::NodeId;
use crate::cost::CostModel;
use crate::fault::FaultSet;
use crate::obs::metrics::{self, EngineMetrics, WsMetrics};
use crate::obs::sched::{SchedCat, SchedProfile, SchedProfiler, WorkerProf};
use crate::obs::schedule::LinkLedger;
use crate::obs::sink::TraceSink;
use crate::sim::{LinkModel, RouterKind};
use crate::topology::Hypercube;
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Waker};
use std::time::Instant;

/// A node program's suspended state machine, asserted transferable across
/// workers so stolen shards can resume on the thief.
///
/// # Safety
/// Constructed only inside [`ParEngine::run`], where `K: Send` and
/// `T: Send` hold; the future captures the program reference (`F: Sync`),
/// a `NodeCtx` (`Arc`s over `Send` state) and the node's `Vec<K>` input.
/// The residual obligation — documented at the module level — is that node
/// programs hold no thread-affine state across await points.
struct NodeTask<'a, T>(Pin<Box<dyn Future<Output = T> + 'a>>);

unsafe impl<T: Send> Send for NodeTask<'_, T> {}

/// A node's program state within its shard.
enum TaskState<'a, K, T> {
    /// Not yet polled; holds the node's initial input.
    Fresh(Vec<K>),
    Running(NodeTask<'a, T>),
    Done,
}

/// One unit of stealable work: a contiguous ascending range of live nodes
/// with their program states and frontier bookkeeping. Accessed through
/// [`ShardSlot`] under the claim protocol.
struct Shard<'a, K, T> {
    /// Program state per node, indexed by the node's slot within the shard.
    tasks: Vec<TaskState<'a, K, T>>,
    /// Node ids to poll next round (ascending).
    runnable: Vec<usize>,
    /// Node ids polled this round (ascending).
    ran: Vec<usize>,
    /// Node ids not yet finished (ascending).
    alive: Vec<usize>,
}

/// The shared scheduler state: shards, the bin matrix, deques and barrier.
struct Sched<'a, K, T> {
    shards: Vec<ShardSlot<Shard<'a, K, T>>>,
    /// `S × S` outbox bins: `bins[src_shard * S + dst_shard]`. Row `s` is
    /// written by shard `s`'s poll/flush claimant; column `d` is drained by
    /// shard `d`'s delivery claimant — a barrier separates the two.
    bins: Vec<ShardSlot<Vec<SimMessage<K>>>>,
    /// Per destination shard: messages were binned for it this round.
    incoming: Vec<AtomicBool>,
    deques: Vec<WsDeque>,
    barrier: SenseBarrier,
    /// Frontier sizes of the current/next round, indexed by round parity.
    /// Every worker reads the round's slot after the delivery barrier to
    /// agree on termination; the coordinator resets the *other* slot one
    /// round ahead of its writers.
    woken: [AtomicUsize; 2],
    /// Node id → owning shard (`u32::MAX` for non-participants).
    shard_of: Vec<u32>,
    /// Node id → slot within its shard.
    slot_of: Vec<u32>,
    workers: usize,
    /// Whether the serial flush phase runs (sink attached or contended
    /// links): outboxes then stay put in phase 1 and are flushed, priced
    /// and binned by the coordinator in global canonical order.
    serial: bool,
    /// Live-telemetry handles (rounds, deliveries), resolved once at
    /// construction from the process-wide registry; `None` keeps every hook
    /// a single branch.
    metrics: Option<EngineMetrics>,
    /// Work-stealing telemetry (successful steals); same lifecycle.
    ws: Option<WsMetrics>,
}

/// Immutable run context shared by every worker.
struct Env<'a, K, T, F> {
    program: &'a F,
    cube: Hypercube,
    faults: &'a Arc<FaultSet>,
    cost: CostModel,
    router: RouterKind,
    cells: &'a [SharedCell<K>],
    participation: &'a Arc<Vec<bool>>,
    results: &'a Mutex<Vec<Option<T>>>,
}

/// Coordinator-only state for the serial flush phase.
struct SerialCtx<K> {
    sink: Option<Arc<Mutex<dyn TraceSink>>>,
    ledger: Option<LinkLedger>,
    cost: CostModel,
    msgs: Vec<SimMessage<K>>,
    recs: Vec<CellRecord>,
}

/// Poisons the barrier when its worker unwinds out of a node program, so
/// the rest of the pool exits its phase loop and `thread::scope` can join
/// everyone and re-raise the original panic.
struct PoisonGuard<'a>(&'a SenseBarrier);

impl Drop for PoisonGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.poison();
        }
    }
}

/// The parallel frontier engine.
///
/// Usually reached through [`Engine::run`] with [`EngineKind::Par`];
/// constructing a `ParEngine` directly additionally exposes
/// [`ParEngine::with_workers`] and [`ParEngine::with_shard_size`].
/// Requires `K`/`T`: [`Send`] and a [`Sync`] program (workers share
/// `&program`), like the threaded engine.
///
/// [`EngineKind::Par`]: super::EngineKind::Par
#[derive(Clone)]
pub struct ParEngine {
    faults: Arc<FaultSet>,
    cost: CostModel,
    router: RouterKind,
    link_model: LinkModel,
    tracing: bool,
    sink: Option<Arc<Mutex<dyn TraceSink>>>,
    workers: usize,
    shard: Option<usize>,
    profiler: Option<Arc<SchedProfiler>>,
}

impl ParEngine {
    /// Creates a machine over the fault set's topology with the given cost
    /// model, sized to the host (`std::thread::available_parallelism`).
    pub fn new(faults: FaultSet, cost: CostModel) -> Self {
        ParEngine {
            faults: Arc::new(faults),
            cost,
            router: RouterKind::default(),
            link_model: LinkModel::default(),
            tracing: false,
            sink: None,
            workers: default_workers(),
            shard: None,
            profiler: None,
        }
    }

    /// A fault-free machine.
    pub fn fault_free(cube: Hypercube, cost: CostModel) -> Self {
        ParEngine::new(FaultSet::none(cube), cost)
    }

    /// Selects the routing algorithm used to charge hops (builder style).
    pub fn with_router(mut self, router: RouterKind) -> Self {
        self.router = router;
        self
    }

    /// Selects the link pricing model (builder style); see
    /// [`SeqEngine::with_link_model`].
    ///
    /// [`SeqEngine::with_link_model`]: super::sequential::SeqEngine::with_link_model
    pub fn with_link_model(mut self, link_model: LinkModel) -> Self {
        self.link_model = link_model;
        self
    }

    /// Enables per-event tracing (builder style).
    pub fn with_tracing(mut self) -> Self {
        self.tracing = true;
        self
    }

    /// Attaches a streaming trace sink (builder style); see [`TraceSink`].
    pub fn with_trace_sink(mut self, sink: Arc<Mutex<dyn TraceSink>>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Sets the worker-pool size (builder style). Clamped to at least 1 and
    /// at most the shard count at run time; the pool size affects
    /// wall-clock only, never simulated results.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the shard size — how many contiguous live-rank nodes form one
    /// unit of stealable work (builder style). Defaults to an automatic
    /// size targeting ~4 shards per worker, capped at 64 nodes. Affects
    /// wall-clock only, never simulated results. Note the engine keeps an
    /// `S × S` bin matrix over the `S` shards, so very small shards on
    /// large cubes cost `O(S²)` idle `Vec`s of memory.
    pub fn with_shard_size(mut self, shard: usize) -> Self {
        self.shard = Some(shard.max(1));
        self
    }

    /// Attaches a scheduler profiler (builder style): the next run records
    /// per-worker wall-clock telemetry — category switches, steal
    /// attempts, parks, barrier waits — into the profiler's mailbox as a
    /// [`SchedProfile`]. Profiling observes the host scheduler only; it
    /// never changes simulated results (pinned by the byte-identity tests
    /// in `tests/sched_profile.rs`).
    pub fn with_sched_profiler(mut self, profiler: Arc<SchedProfiler>) -> Self {
        self.profiler = Some(profiler);
        self
    }

    pub(super) fn from_engine(engine: &Engine) -> Self {
        ParEngine {
            faults: engine.faults_arc(),
            cost: engine.cost_model(),
            router: engine.router(),
            link_model: engine.link_model(),
            tracing: engine.tracing(),
            sink: engine.sink(),
            workers: engine.workers().unwrap_or_else(default_workers).max(1),
            shard: engine.shard(),
            profiler: engine.sched_profiler(),
        }
    }

    /// The topology.
    pub fn cube(&self) -> Hypercube {
        self.faults.cube()
    }

    /// The fault set.
    pub fn faults(&self) -> &FaultSet {
        &self.faults
    }

    /// The cost model.
    pub fn cost_model(&self) -> CostModel {
        self.cost
    }

    /// The configured worker-pool size (before the run-time clamp).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `program` SPMD on every node for which `inputs` supplies data —
    /// same contract and byte-identical results as [`SeqEngine::run`], with
    /// each round's frontier executed on the work-stealing pool.
    ///
    /// # Panics
    /// Propagates node-program panics, rejects inputs assigned to faulty
    /// processors, and panics immediately (with the wait map) if the
    /// programs deadlock.
    ///
    /// [`SeqEngine::run`]: super::sequential::SeqEngine::run
    pub fn run<K, T, F>(&self, inputs: Vec<Option<Vec<K>>>, program: F) -> RunOutcome<T>
    where
        K: Send,
        T: Send,
        F: AsyncFn(&mut NodeCtx<K>, Vec<K>) -> T + Sync,
    {
        let cube = self.cube();
        validate_inputs(&self.faults, &inputs);

        if let Some(sink) = &self.sink {
            sink.lock().expect("trace sink lock poisoned").begin(
                cube.dim(),
                &self.cost,
                self.link_model,
            );
        }

        let (cells, participation) =
            build_cells(&inputs, cube.dim(), self.tracing, self.sink.is_some());
        // Declared before the shards: the shards' futures borrow into the
        // run context, so on unwind paths they must drop first.
        let results: Mutex<Vec<Option<T>>> = Mutex::new((0..cells.len()).map(|_| None).collect());

        // Shard the participants: contiguous live-rank chunks, so every
        // shard is an ascending node-id range (the delivery-order proof in
        // the module docs depends on this).
        let participants: Vec<usize> = inputs
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.is_some().then_some(i))
            .collect();
        let live = participants.len();
        let workers_req = self.workers.max(1);
        let (workers, shard_size, shard_count) = schedule_for(live, Some(workers_req), self.shard);

        let mut inputs = inputs;
        let mut shard_of: Vec<u32> = vec![u32::MAX; cells.len()];
        let mut slot_of: Vec<u32> = vec![u32::MAX; cells.len()];
        let mut shards: Vec<ShardSlot<Shard<'_, K, T>>> = Vec::with_capacity(shard_count);
        for (s, chunk) in participants.chunks(shard_size).enumerate() {
            let mut tasks = Vec::with_capacity(chunk.len());
            for (slot, &id) in chunk.iter().enumerate() {
                shard_of[id] = s as u32;
                slot_of[id] = slot as u32;
                tasks.push(TaskState::Fresh(
                    inputs[id].take().expect("participant has input"),
                ));
            }
            shards.push(ShardSlot::new(Shard {
                tasks,
                runnable: chunk.to_vec(),
                ran: Vec::with_capacity(chunk.len()),
                alive: chunk.to_vec(),
            }));
        }

        let serial = self.sink.is_some() || self.link_model == LinkModel::Contended;
        let mut sched = Sched {
            shards,
            bins: (0..shard_count * shard_count)
                .map(|_| ShardSlot::new(Vec::new()))
                .collect(),
            incoming: (0..shard_count).map(|_| AtomicBool::new(false)).collect(),
            deques: (0..workers).map(|_| WsDeque::new(shard_count)).collect(),
            barrier: SenseBarrier::new(workers),
            woken: [AtomicUsize::new(0), AtomicUsize::new(0)],
            shard_of,
            slot_of,
            workers,
            serial,
            metrics: metrics::global().map(|g| g.run.engine.clone()),
            ws: metrics::global().map(|g| g.run.ws.clone()),
        };
        let ser = serial.then(|| SerialCtx {
            sink: self.sink.clone(),
            ledger: (self.link_model == LinkModel::Contended)
                .then(|| LinkLedger::new(cube.dim(), 1 << cube.dim())),
            cost: self.cost,
            msgs: Vec::new(),
            recs: Vec::new(),
        });
        let program = &program;
        let env = Env {
            program,
            cube,
            faults: &self.faults,
            cost: self.cost,
            router: self.router,
            cells: &cells,
            participation: &participation,
            results: &results,
        };

        // When profiling, every worker gets a preallocated recorder sharing
        // one clock epoch; recorders ride into the spawn closures and come
        // back through the join handles, so the hot path stays lock-free
        // and the disabled path is a single `Option` check per hook.
        let epoch = Instant::now();
        let mut profs: Vec<Option<WorkerProf>> = (0..workers)
            .map(|w| {
                self.profiler
                    .as_ref()
                    .map(|p| WorkerProf::new(w, workers, epoch, p.ring_capacity()))
            })
            .collect();

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers.saturating_sub(1));
            for (w, slot) in profs.iter_mut().enumerate().skip(1) {
                let mut prof = slot.take();
                let (sched, env) = (&sched, &env);
                handles.push(scope.spawn(move || {
                    worker_loop(w, sched, env, None, prof.as_mut());
                    if let Some(p) = prof.as_mut() {
                        p.finish();
                    }
                    prof
                }));
            }
            // The caller is worker 0: the coordinator for the serial flush
            // phase and the `woken` slot resets.
            let mut prof0 = profs[0].take();
            worker_loop(0, &sched, &env, ser, prof0.as_mut());
            if let Some(p) = prof0.as_mut() {
                p.finish();
            }
            profs[0] = prof0;
            // Join explicitly to recover the recorders; a panicked worker
            // surfaces as the scope would have surfaced it — first payload
            // re-raised after every handle is joined.
            let mut first_panic = None;
            for (w, handle) in handles.into_iter().enumerate() {
                match handle.join() {
                    Ok(prof) => profs[w + 1] = prof,
                    Err(payload) => {
                        first_panic.get_or_insert(payload);
                    }
                }
            }
            if let Some(payload) = first_panic {
                std::panic::resume_unwind(payload);
            }
        });

        if let Some(profiler) = &self.profiler {
            let workers_prof: Vec<WorkerProf> = profs.into_iter().flatten().collect();
            if let Some(g) = metrics::global() {
                let events: u64 = workers_prof.iter().map(|p| p.events().len() as u64).sum();
                let dropped: u64 = workers_prof.iter().map(WorkerProf::dropped).sum();
                g.run.sched.ring_events.set(events as i64);
                g.run.sched.events_dropped.add(dropped);
            }
            profiler.install(SchedProfile {
                workers_requested: workers_req,
                workers,
                shard_size,
                shard_count,
                live_nodes: live,
                serial,
                workers_prof,
            });
        }

        let remaining: usize = sched
            .shards
            .iter_mut()
            .map(|s| s.get_mut().alive.len())
            .sum();
        if remaining > 0 {
            deadlock_panic(&cells, remaining);
        }
        // The shards hold the node futures, whose lifetime is unified with
        // the `env` borrows of `cells`/`results`; drop them before moving
        // either out.
        drop(sched);

        let results = results.into_inner().unwrap_or_else(|e| e.into_inner());
        collect_run(
            cells,
            results,
            &self.sink,
            cube.dim(),
            self.cost,
            self.link_model,
        )
    }
}

/// The host's available parallelism (at least 1).
fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZero::get)
        .unwrap_or(1)
}

/// Automatic shard size: ~4 shards per worker for steal granularity,
/// capped at 64 nodes so one shard's round work stays cache-sized.
fn auto_shard_size(live: usize, workers: usize) -> usize {
    live.div_ceil(workers * 4).clamp(1, 64)
}

/// The effective schedule for `live` participating nodes: the
/// `(workers, shard_size, shard_count)` triple [`ParEngine::run`] uses
/// after clamping — `workers` defaults to the host parallelism and is
/// capped by the shard count, `shard_size` defaults to
/// ~4 shards per worker capped at 64 nodes. Exposed so reports
/// ([`RunReport::workers_effective`], `engines_json` rows) can record the
/// schedule a run actually executed rather than what was requested.
///
/// [`RunReport::workers_effective`]: crate::obs::RunReport::workers_effective
pub fn schedule_for(
    live: usize,
    workers: Option<usize>,
    shard: Option<usize>,
) -> (usize, usize, usize) {
    let workers_req = workers.unwrap_or_else(default_workers).max(1);
    let shard_size = shard
        .map(|s| s.max(1))
        .unwrap_or_else(|| auto_shard_size(live, workers_req));
    let shard_count = live.div_ceil(shard_size);
    let workers = workers_req.min(shard_count).max(1);
    (workers, shard_size, shard_count)
}

/// One worker's whole run: phase loop until the frontier empties or the
/// barrier is poisoned. Worker 0 doubles as the coordinator.
fn worker_loop<'a, K, T, F>(
    w: usize,
    sched: &Sched<'a, K, T>,
    env: &Env<'a, K, T, F>,
    mut ser: Option<SerialCtx<K>>,
    mut prof: Option<&mut WorkerProf>,
) where
    K: Send,
    T: Send,
    F: AsyncFn(&mut NodeCtx<K>, Vec<K>) -> T + Sync,
{
    let _poison = PoisonGuard(&sched.barrier);
    // Start the recorder on the worker's own thread, so spawn latency is
    // not charged to anyone's wall time.
    if let Some(p) = prof.as_deref_mut() {
        p.begin();
    }
    let mut poll_cx = Context::from_waker(Waker::noop());
    let shard_count = sched.shards.len();
    let mut r: usize = 0;
    loop {
        // The coordinator counts the round — once, matching the sequential
        // committer's one `rounds` tick per commit.
        if w == 0 {
            if let Some(m) = &sched.metrics {
                m.rounds.inc();
            }
        }
        // Phase 1 — poll. Stage own affine runnable shards, then claim.
        for s in (w..shard_count).step_by(sched.workers) {
            // SAFETY: pre-push reads of an unclaimed shard belong to its
            // affinity owner; the deque's release/acquire on push/steal
            // orders them before any thief's access.
            if !unsafe { sched.shards[s].get() }.runnable.is_empty() {
                // Recorded before the push: the runnable-counter +1 must
                // timestamp before any thief's -1 against this worker.
                if let Some(p) = prof.as_deref_mut() {
                    p.staged();
                }
                sched.deques[w].push(s as u32);
            }
        }
        claim_shards(
            w,
            sched,
            |s| unsafe { poll_shard(s, sched, env, &mut poll_cx) },
            &mut prof,
            SchedCat::Poll,
        );
        if sched.barrier.wait_prof(prof.as_deref_mut()) {
            return;
        }

        // Phase 2 — serial flush (coordinator only, when needed): record
        // flushing and link pricing are global orders.
        if sched.serial {
            if let Some(ser) = ser.as_mut() {
                if let Some(p) = prof.as_deref_mut() {
                    p.switch(SchedCat::Serial, 0);
                }
                serial_flush(ser, sched, env.cells);
                if let Some(p) = prof.as_deref_mut() {
                    p.switch(SchedCat::Other, 0);
                }
            }
            if sched.barrier.wait_prof(prof.as_deref_mut()) {
                return;
            }
        }

        // Phase 3 — deliver + wake. The coordinator also resets the *next*
        // round's frontier counter: its writers run in phase 3 of round
        // r+1 and its readers finished before round r began, so this is
        // the quiet window for the slot.
        if w == 0 {
            sched.woken[(r + 1) & 1].store(0, Ordering::Relaxed);
        }
        for s in (w..shard_count).step_by(sched.workers) {
            // SAFETY: pre-push reads, as in phase 1.
            let sh = unsafe { sched.shards[s].get() };
            if sched.incoming[s].load(Ordering::Relaxed) || !sh.ran.is_empty() {
                if let Some(p) = prof.as_deref_mut() {
                    p.staged();
                }
                sched.deques[w].push(s as u32);
            }
        }
        claim_shards(
            w,
            sched,
            |s| unsafe { deliver_shard(s, r, sched, env.cells) },
            &mut prof,
            SchedCat::Deliver,
        );
        if sched.barrier.wait_prof(prof.as_deref_mut()) {
            return;
        }
        if sched.woken[r & 1].load(Ordering::Relaxed) == 0 {
            return;
        }
        r += 1;
    }
}

/// Drains the worker's own deque LIFO, then steals FIFO from peers; exits
/// when everything looks empty. Every pushed shard is claimed exactly once
/// (Chase–Lev semantics); a worker exiting early just means its leftovers
/// are processed by their owner or another thief.
///
/// `run` returns the number of nodes processed on the claimed shard —
/// recorded into the shard-size histogram when `cat` is the poll phase.
/// Time between claims (pop/steal scanning) is charged to
/// [`SchedCat::Steal`]; time inside `run` to `cat`.
fn claim_shards<K, T>(
    w: usize,
    sched: &Sched<'_, K, T>,
    mut run: impl FnMut(usize) -> u32,
    prof: &mut Option<&mut WorkerProf>,
    cat: SchedCat,
) {
    if let Some(p) = prof.as_deref_mut() {
        p.switch(SchedCat::Steal, 0);
    }
    let own = &sched.deques[w];
    loop {
        if let Some(s) = own.pop() {
            if let Some(p) = prof.as_deref_mut() {
                p.popped();
                p.switch(cat, s);
            }
            let units = run(s as usize);
            if let Some(p) = prof.as_deref_mut() {
                if cat == SchedCat::Poll {
                    p.polled(units);
                }
                p.switch(SchedCat::Steal, 0);
            }
            continue;
        }
        let mut stole = false;
        for k in 1..sched.workers {
            let victim = (w + k) % sched.workers;
            if let Some(s) = sched.deques[victim].steal() {
                if let Some(m) = &sched.ws {
                    m.steals.inc();
                }
                if let Some(p) = prof.as_deref_mut() {
                    p.stole(victim);
                    p.switch(cat, s);
                }
                let units = run(s as usize);
                if let Some(p) = prof.as_deref_mut() {
                    if cat == SchedCat::Poll {
                        p.polled(units);
                    }
                    p.switch(SchedCat::Steal, 0);
                }
                stole = true;
                break;
            } else if let Some(p) = prof.as_deref_mut() {
                p.steal_missed(victim);
            }
        }
        if !stole {
            if let Some(p) = prof.as_deref_mut() {
                p.switch(SchedCat::Other, 0);
            }
            return;
        }
    }
}

/// Phase 1 for one claimed shard: swap in the staged frontier, poll every
/// runnable node once (creating its future on first poll), and — when no
/// serial phase runs — move outboxes into the bin matrix. Returns the
/// number of nodes polled (the profiler's shard-size sample).
///
/// # Safety
/// The caller must hold the claim on shard `s` (popped or stolen from a
/// deque this phase).
unsafe fn poll_shard<'a, K, T, F>(
    s: usize,
    sched: &Sched<'a, K, T>,
    env: &Env<'a, K, T, F>,
    poll_cx: &mut Context<'_>,
) -> u32
where
    K: Send,
    T: Send,
    F: AsyncFn(&mut NodeCtx<K>, Vec<K>) -> T + Sync,
{
    // SAFETY: exclusive by the claim the caller holds.
    let sh = unsafe { sched.shards[s].get() };
    std::mem::swap(&mut sh.ran, &mut sh.runnable);
    debug_assert!(sh.runnable.is_empty(), "previous round left staged work");
    for idx in 0..sh.ran.len() {
        let id = sh.ran[idx];
        let state = &mut sh.tasks[sched.slot_of[id] as usize];
        if matches!(*state, TaskState::Fresh(_)) {
            let TaskState::Fresh(input) = std::mem::replace(state, TaskState::Done) else {
                unreachable!()
            };
            let ctx = NodeCtx::new_cell(
                NodeId::from(id),
                env.cube,
                Arc::clone(env.faults),
                env.cost,
                env.router,
                CellCtx::new(Arc::clone(&env.cells[id]), Arc::clone(env.participation)),
            );
            let program = env.program;
            *state = TaskState::Running(NodeTask(Box::pin(async move {
                let mut ctx = ctx;
                program(&mut ctx, input).await
            })));
        }
        let TaskState::Running(task) = state else {
            unreachable!("scheduled node has no task")
        };
        match task.0.as_mut().poll(poll_cx) {
            Poll::Ready(value) => {
                *state = TaskState::Done;
                env.cells[id].lock().expect("node cell lock poisoned").done = true;
                env.results.lock().expect("results lock poisoned")[id] = Some(value);
            }
            Poll::Pending => {}
        }
    }
    if !sched.serial {
        let shard_count = sched.shards.len();
        for &id in &sh.ran {
            let mut cell = env.cells[id].lock().expect("node cell lock poisoned");
            for msg in cell.outbox.drain(..) {
                let d = sched.shard_of[msg.dst.index()] as usize;
                // SAFETY: row `s` of the bin matrix belongs to this claim.
                unsafe { sched.bins[s * shard_count + d].get() }.push(msg);
                sched.incoming[d].store(true, Ordering::Relaxed);
            }
        }
    }
    sh.ran.len() as u32
}

/// Phase 2, coordinator only: flush records and price messages for the
/// round's ran nodes in ascending node-id order — the sequential engine's
/// exact sequence — binning each priced message for parallel delivery.
fn serial_flush<K, T>(ser: &mut SerialCtx<K>, sched: &Sched<'_, K, T>, cells: &[SharedCell<K>]) {
    let shard_count = sched.shards.len();
    for s in 0..shard_count {
        // SAFETY: phase 2 runs on the coordinator alone, between barriers.
        let sh = unsafe { sched.shards[s].get() };
        for &id in &sh.ran {
            {
                let mut cell = cells[id].lock().expect("node cell lock poisoned");
                std::mem::swap(&mut cell.outbox, &mut ser.msgs);
                if cell.sinking {
                    std::mem::swap(&mut cell.records, &mut ser.recs);
                }
            }
            if !ser.recs.is_empty() {
                let sink = ser.sink.as_ref().expect("records buffered without a sink");
                flush_records(sink, id, &mut ser.recs);
            }
            for mut msg in ser.msgs.drain(..) {
                if let Some(ledger) = &mut ser.ledger {
                    // Links are acquired in commit order — ascending ran
                    // node, then per-node outbox (program) order — the
                    // deterministic arbitration rule schema v2 records.
                    let (arrival, wait) = ledger.acquire(
                        msg.src,
                        msg.dst,
                        msg.data.len(),
                        msg.hops,
                        msg.sent_at,
                        &ser.cost,
                    );
                    msg.arrival = arrival;
                    msg.wait = wait;
                }
                let d = sched.shard_of[msg.dst.index()] as usize;
                // SAFETY: coordinator-exclusive phase.
                unsafe { sched.bins[s * shard_count + d].get() }.push(msg);
                sched.incoming[d].store(true, Ordering::Relaxed);
            }
        }
    }
}

/// Phase 3 for one claimed shard: drain the shard's bin column (ascending
/// source shard = ascending source node order) into its nodes' inboxes,
/// then prune finished nodes and stage the woken frontier. Returns the
/// number of nodes woken into the next frontier.
///
/// # Safety
/// The caller must hold the claim on shard `s` (popped or stolen from a
/// deque this phase).
unsafe fn deliver_shard<K, T>(
    s: usize,
    r: usize,
    sched: &Sched<'_, K, T>,
    cells: &[SharedCell<K>],
) -> u32 {
    let shard_count = sched.shards.len();
    // SAFETY: exclusive by the claim the caller holds.
    let sh = unsafe { sched.shards[s].get() };
    if sched.incoming[s].load(Ordering::Relaxed) {
        sched.incoming[s].store(false, Ordering::Relaxed);
        let mut delivered: u64 = 0;
        for src in 0..shard_count {
            // SAFETY: column `s` of the bin matrix belongs to this claim.
            let bin = unsafe { sched.bins[src * shard_count + s].get() };
            delivered += bin.len() as u64;
            for msg in bin.drain(..) {
                let mut dst = cells[msg.dst.index()]
                    .lock()
                    .expect("node cell lock poisoned");
                dst.inbox.push(msg);
                let backlog = dst.inbox.len() as u64;
                dst.metrics.inbox_peak = dst.metrics.inbox_peak.max(backlog);
            }
        }
        if delivered > 0 {
            if let Some(m) = &sched.metrics {
                m.messages_delivered.add(delivered);
            }
        }
    }
    sh.ran.clear();
    let mut runnable = std::mem::take(&mut sh.runnable);
    sh.alive.retain(|&id| {
        let mut cell = cells[id].lock().expect("node cell lock poisoned");
        if cell.done {
            return false;
        }
        if let Some((src, tag)) = cell.waiting {
            if cell.inbox.iter().any(|m| m.src == src && m.tag == tag) {
                cell.waiting = None;
                runnable.push(id);
            }
        }
        true
    });
    if !runnable.is_empty() {
        sched.woken[r & 1].fetch_add(runnable.len(), Ordering::Relaxed);
    }
    let woken = runnable.len() as u32;
    sh.runnable = runnable;
    woken
}
