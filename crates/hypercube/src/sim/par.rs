//! The parallel frontier engine: a fixed worker pool executes each round's
//! ready frontier concurrently, with the shared barrier/commit discipline
//! from [`super::frontier`] keeping every observable byte-identical to the
//! sequential engine.
//!
//! ## Execution model
//!
//! Node programs are pinned to workers (live rank modulo pool size), and
//! each worker *creates and polls its nodes' futures locally* — futures
//! never cross threads, so node programs need no `Send` future bound. A
//! coordinator thread (the caller) stages each round's runnable node ids
//! into per-worker slots, wakes the pool, waits for all workers to finish
//! the round, and then commits the barrier single-threaded: outbox delivery,
//! record flush and frontier wake-up all happen in ascending node-id order,
//! exactly as on [`SeqEngine`]. During a round a node's cell is touched only
//! by its own worker; at the barrier only by the coordinator — every lock is
//! uncontended, and warm rounds allocate nothing (the round handshake is a
//! generation-counted mutex/condvar pair, not a channel, precisely so the
//! steady state stays allocation-free; see
//! `crates/hypercube/tests/alloc_free.rs`).
//!
//! ## Why this is deterministic
//!
//! A round's sends are invisible until its barrier, so the members of one
//! frontier are mutually independent: polling them on any number of threads
//! in any order yields the same per-node clocks, stats, spans, trace events
//! and — because delivery and record flushing are coordinator-side and
//! id-ordered — the same global record stream and inbox peaks. The three-way
//! differential tests (`tests/engine_diff.rs`, `tests/obs_invariants.rs`)
//! pin this: results, `RunReport` JSON, run files, Perfetto exports and
//! critical paths match `SeqEngine` byte for byte.
//!
//! [`SeqEngine`]: super::sequential::SeqEngine

use super::engine::{validate_inputs, Engine, NodeCtx, RunOutcome};
use super::frontier::{
    build_cells, collect_run, deadlock_panic, CellCtx, NodeCell, RoundCommitter,
};
use crate::address::NodeId;
use crate::cost::CostModel;
use crate::fault::FaultSet;
use crate::obs::sink::TraceSink;
use crate::sim::{LinkModel, RouterKind};
use crate::topology::Hypercube;
use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Condvar, Mutex};
use std::task::{Context, Poll, Waker};

/// Round handshake between the coordinator and the worker pool.
///
/// The coordinator bumps `generation` after staging `runnable`; workers wait
/// for the bump, drain their slot, poll, and decrement `pending`. No heap
/// traffic per round — the slot vectors are recycled by `mem::swap`.
struct RoundSync {
    state: Mutex<RoundState>,
    /// Coordinator → workers: a new round is staged (or `stop` is set).
    work: Condvar,
    /// Workers → coordinator: the last worker of a round finished.
    done: Condvar,
}

struct RoundState {
    generation: u64,
    stop: bool,
    /// Set by a worker's unwind guard when a node program panics, so the
    /// coordinator stops waiting and lets the scope propagate the panic.
    panicked: bool,
    /// Per-worker runnable node ids for the staged round.
    runnable: Vec<Vec<usize>>,
    /// Workers that have not yet finished the staged round.
    pending: usize,
}

impl RoundSync {
    fn new(workers: usize) -> Self {
        RoundSync {
            state: Mutex::new(RoundState {
                generation: 0,
                stop: false,
                panicked: false,
                runnable: (0..workers).map(|_| Vec::new()).collect(),
                pending: 0,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RoundState> {
        // A worker can only poison this lock between rounds (node programs
        // run outside it); recover the state to reach the panicked flag.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Tells the pool to shut down when the coordinator leaves the scope —
/// normally or by panicking (e.g. the deadlock panic) — so `thread::scope`
/// can join the workers instead of hanging.
struct StopGuard<'a> {
    sync: &'a RoundSync,
}

impl Drop for StopGuard<'_> {
    fn drop(&mut self) {
        self.sync.lock().stop = true;
        self.sync.work.notify_all();
    }
}

/// Unblocks the coordinator when a worker unwinds out of a node program.
struct PanicGuard<'a> {
    sync: &'a RoundSync,
}

impl Drop for PanicGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.sync.lock().panicked = true;
            self.sync.done.notify_all();
        }
    }
}

/// The parallel frontier engine.
///
/// Usually reached through [`Engine::run`] with [`EngineKind::Par`];
/// constructing a `ParEngine` directly additionally exposes
/// [`ParEngine::with_workers`]. Requires `K`/`T`: [`Send`] and a [`Sync`]
/// program (workers share `&program`), like the threaded engine.
///
/// [`EngineKind::Par`]: super::EngineKind::Par
#[derive(Clone)]
pub struct ParEngine {
    faults: Arc<FaultSet>,
    cost: CostModel,
    router: RouterKind,
    link_model: LinkModel,
    tracing: bool,
    sink: Option<Arc<Mutex<dyn TraceSink>>>,
    workers: usize,
}

impl ParEngine {
    /// Creates a machine over the fault set's topology with the given cost
    /// model, sized to the host (`std::thread::available_parallelism`).
    pub fn new(faults: FaultSet, cost: CostModel) -> Self {
        ParEngine {
            faults: Arc::new(faults),
            cost,
            router: RouterKind::default(),
            link_model: LinkModel::default(),
            tracing: false,
            sink: None,
            workers: default_workers(),
        }
    }

    /// A fault-free machine.
    pub fn fault_free(cube: Hypercube, cost: CostModel) -> Self {
        ParEngine::new(FaultSet::none(cube), cost)
    }

    /// Selects the routing algorithm used to charge hops (builder style).
    pub fn with_router(mut self, router: RouterKind) -> Self {
        self.router = router;
        self
    }

    /// Selects the link pricing model (builder style); see
    /// [`SeqEngine::with_link_model`].
    ///
    /// [`SeqEngine::with_link_model`]: super::sequential::SeqEngine::with_link_model
    pub fn with_link_model(mut self, link_model: LinkModel) -> Self {
        self.link_model = link_model;
        self
    }

    /// Enables per-event tracing (builder style).
    pub fn with_tracing(mut self) -> Self {
        self.tracing = true;
        self
    }

    /// Attaches a streaming trace sink (builder style); see [`TraceSink`].
    pub fn with_trace_sink(mut self, sink: Arc<Mutex<dyn TraceSink>>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Sets the worker-pool size (builder style). Clamped to at least 1 and
    /// at most the number of participating nodes at run time; the pool size
    /// affects wall-clock only, never simulated results.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    pub(super) fn from_engine(engine: &Engine) -> Self {
        ParEngine {
            faults: engine.faults_arc(),
            cost: engine.cost_model(),
            router: engine.router(),
            link_model: engine.link_model(),
            tracing: engine.tracing(),
            sink: engine.sink(),
            workers: engine.workers().unwrap_or_else(default_workers).max(1),
        }
    }

    /// The topology.
    pub fn cube(&self) -> Hypercube {
        self.faults.cube()
    }

    /// The fault set.
    pub fn faults(&self) -> &FaultSet {
        &self.faults
    }

    /// The cost model.
    pub fn cost_model(&self) -> CostModel {
        self.cost
    }

    /// The configured worker-pool size (before the run-time clamp).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `program` SPMD on every node for which `inputs` supplies data —
    /// same contract and byte-identical results as [`SeqEngine::run`], with
    /// each round's frontier executed on the worker pool.
    ///
    /// # Panics
    /// Propagates node-program panics, rejects inputs assigned to faulty
    /// processors, and panics immediately (with the wait map) if the
    /// programs deadlock.
    ///
    /// [`SeqEngine::run`]: super::sequential::SeqEngine::run
    pub fn run<K, T, F>(&self, inputs: Vec<Option<Vec<K>>>, program: F) -> RunOutcome<T>
    where
        K: Send,
        T: Send,
        F: AsyncFn(&mut NodeCtx<K>, Vec<K>) -> T + Sync,
    {
        let cube = self.cube();
        validate_inputs(&self.faults, &inputs);

        if let Some(sink) = &self.sink {
            sink.lock().expect("trace sink lock poisoned").begin(
                cube.dim(),
                &self.cost,
                self.link_model,
            );
        }

        let (cells, participation) =
            build_cells(&inputs, cube.dim(), self.tracing, self.sink.is_some());

        // Pin each participating node to a worker by live rank. The worker
        // creates and polls the node's future locally, so futures (which
        // cannot be named, let alone bounded `Send`) stay thread-local.
        let mut participants: Vec<usize> = Vec::new();
        let mut worker_of: Vec<usize> = vec![usize::MAX; cells.len()];
        for (i, slot) in inputs.iter().enumerate() {
            if slot.is_some() {
                worker_of[i] = participants.len(); // provisional: live rank
                participants.push(i);
            }
        }
        let workers = self.workers.max(1).min(participants.len().max(1));
        for w in worker_of.iter_mut().filter(|w| **w != usize::MAX) {
            *w %= workers;
        }

        let mut batches: Vec<Vec<(usize, Vec<K>)>> = (0..workers).map(|_| Vec::new()).collect();
        for (i, slot) in inputs.into_iter().enumerate() {
            if let Some(input) = slot {
                batches[worker_of[i]].push((i, input));
            }
        }

        let sync = RoundSync::new(workers);
        let results: Mutex<Vec<Option<T>>> = Mutex::new((0..cells.len()).map(|_| None).collect());
        let program = &program;

        std::thread::scope(|scope| {
            for (w, batch) in batches.drain(..).enumerate() {
                let (cells, participation, sync, results) =
                    (&cells, &participation, &sync, &results);
                let (faults, cost, router) = (&self.faults, self.cost, self.router);
                scope.spawn(move || {
                    worker_main(
                        w,
                        batch,
                        cells,
                        participation,
                        sync,
                        results,
                        program,
                        cube,
                        faults,
                        cost,
                        router,
                    )
                });
            }
            let _stop = StopGuard { sync: &sync };

            let mut round = participants.clone();
            let mut alive = participants;
            let mut next: Vec<usize> = Vec::new();
            let mut committer =
                RoundCommitter::new(self.sink.clone(), self.link_model, cube.dim(), self.cost);
            while !round.is_empty() {
                {
                    let mut st = sync.lock();
                    for &i in &round {
                        st.runnable[worker_of[i]].push(i);
                    }
                    st.pending = workers;
                    st.generation += 1;
                    sync.work.notify_all();
                    while st.pending > 0 && !st.panicked {
                        st = sync.done.wait(st).unwrap_or_else(|e| e.into_inner());
                    }
                    if st.panicked {
                        // StopGuard shuts the pool down; the scope join
                        // re-raises the worker's original panic payload.
                        drop(st);
                        return;
                    }
                }
                committer.commit(&cells, &round, &mut alive, &mut next);
                std::mem::swap(&mut round, &mut next);
            }

            if !alive.is_empty() {
                deadlock_panic(&cells, alive.len());
            }
        });

        let results = results.into_inner().unwrap_or_else(|e| e.into_inner());
        collect_run(
            cells,
            results,
            &self.sink,
            cube.dim(),
            self.cost,
            self.link_model,
        )
    }
}

/// The host's available parallelism (at least 1).
fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZero::get)
        .unwrap_or(1)
}

#[allow(clippy::too_many_arguments)] // internal plumbing, called once
fn worker_main<K, T, F>(
    w: usize,
    batch: Vec<(usize, Vec<K>)>,
    cells: &[Arc<Mutex<NodeCell<K>>>],
    participation: &Arc<Vec<bool>>,
    sync: &RoundSync,
    results: &Mutex<Vec<Option<T>>>,
    program: &F,
    cube: Hypercube,
    faults: &Arc<FaultSet>,
    cost: CostModel,
    router: RouterKind,
) where
    K: Send,
    T: Send,
    F: AsyncFn(&mut NodeCtx<K>, Vec<K>) -> T + Sync,
{
    let mut futures: Vec<Option<Pin<Box<dyn Future<Output = T> + '_>>>> =
        (0..cells.len()).map(|_| None).collect();
    for (i, input) in batch {
        let ctx = NodeCtx::new_cell(
            NodeId::from(i),
            cube,
            Arc::clone(faults),
            cost,
            router,
            CellCtx::new(Arc::clone(&cells[i]), Arc::clone(participation)),
        );
        futures[i] = Some(Box::pin(async move {
            let mut ctx = ctx;
            program(&mut ctx, input).await
        }));
    }

    let guard = PanicGuard { sync };
    let mut poll_cx = Context::from_waker(Waker::noop());
    let mut mine: Vec<usize> = Vec::new();
    let mut seen = 0u64;
    loop {
        {
            let mut st = sync.lock();
            while st.generation == seen && !st.stop {
                st = sync.work.wait(st).unwrap_or_else(|e| e.into_inner());
            }
            if st.stop {
                break;
            }
            seen = st.generation;
            std::mem::swap(&mut st.runnable[w], &mut mine);
        }
        for &i in &mine {
            let fut = futures[i].as_mut().expect("scheduled node has a task");
            match fut.as_mut().poll(&mut poll_cx) {
                Poll::Ready(value) => {
                    futures[i] = None;
                    cells[i].lock().expect("node cell lock poisoned").done = true;
                    results.lock().expect("results lock poisoned")[i] = Some(value);
                }
                Poll::Pending => {}
            }
        }
        mine.clear();
        {
            let mut st = sync.lock();
            st.pending -= 1;
            if st.pending == 0 {
                sync.done.notify_all();
            }
        }
    }
    std::mem::forget(guard);
}
