//! The sequential event-driven engine: all node programs cooperatively
//! scheduled on one thread.
//!
//! Node programs are async state machines; a blocked [`Comm::recv`] parks
//! the node on a per-`(src, tag)` wait entry and returns `Pending`. The
//! scheduler runs the shared round/frontier discipline from
//! [`super::frontier`]: every runnable node is polled once per round in
//! ascending node-id order, sends buffer in per-node outboxes, and the
//! barrier between rounds delivers them — so the schedule (and every
//! observable derived from it) is a deterministic function of the inputs,
//! shared bit for bit with the parallel engine ([`super::par::ParEngine`]).
//!
//! Compared to the threaded engine this removes all OS threads, channels,
//! context switches and payload copies (a message send hands over the
//! `Vec<K>` allocation to the receiver), while charging the *same* virtual
//! time through the same [`CostModel`]/[`VirtualClock`] calls in the same
//! per-node order — so clocks, statistics and traces are byte-identical
//! between the engines.
//!
//! Deadlock is detected exactly: if unfinished nodes remain but none is
//! runnable, the engine panics immediately with the full wait map instead of
//! waiting for a timeout.
//!
//! [`Comm::recv`]: super::Comm::recv
//! [`CostModel`]: crate::cost::CostModel
//! [`VirtualClock`]: crate::cost::VirtualClock

use super::engine::{validate_inputs, Engine, NodeCtx, RunOutcome};
use super::frontier::{build_cells, collect_run, deadlock_panic, CellCtx, RoundCommitter};
use crate::address::NodeId;
use crate::cost::CostModel;
use crate::fault::FaultSet;
use crate::obs::sink::TraceSink;
use crate::sim::{LinkModel, RouterKind};
use crate::topology::Hypercube;
use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Waker};

/// The sequential run-to-completion engine.
///
/// Usually reached through [`Engine::run`] with [`EngineKind::Seq`]
/// (the default); constructing a `SeqEngine` directly gives the same
/// behavior with looser trait bounds (`K`/`T` need not be `Send`, the
/// program need not be `Sync`).
///
/// [`EngineKind::Seq`]: super::EngineKind::Seq
#[derive(Clone)]
pub struct SeqEngine {
    faults: Arc<FaultSet>,
    cost: CostModel,
    router: RouterKind,
    link_model: LinkModel,
    tracing: bool,
    sink: Option<Arc<Mutex<dyn TraceSink>>>,
}

impl SeqEngine {
    /// Creates a machine over the fault set's topology with the given cost
    /// model.
    pub fn new(faults: FaultSet, cost: CostModel) -> Self {
        SeqEngine {
            faults: Arc::new(faults),
            cost,
            router: RouterKind::default(),
            link_model: LinkModel::default(),
            tracing: false,
            sink: None,
        }
    }

    /// A fault-free machine.
    pub fn fault_free(cube: Hypercube, cost: CostModel) -> Self {
        SeqEngine::new(FaultSet::none(cube), cost)
    }

    /// Selects the routing algorithm used to charge hops (builder style).
    pub fn with_router(mut self, router: RouterKind) -> Self {
        self.router = router;
        self
    }

    /// Selects the link pricing model (builder style). Under
    /// [`LinkModel::Contended`] the commit barrier serializes messages on
    /// shared directed links and receives record wait/transfer separately.
    pub fn with_link_model(mut self, link_model: LinkModel) -> Self {
        self.link_model = link_model;
        self
    }

    /// Enables per-event tracing (builder style).
    pub fn with_tracing(mut self) -> Self {
        self.tracing = true;
        self
    }

    /// Attaches a streaming trace sink (builder style). The sink receives
    /// every trace event and span transition as the barrier flushes it,
    /// plus the run header/footer — see [`TraceSink`].
    pub fn with_trace_sink(mut self, sink: Arc<Mutex<dyn TraceSink>>) -> Self {
        self.sink = Some(sink);
        self
    }

    pub(super) fn from_engine(engine: &Engine) -> Self {
        SeqEngine {
            faults: engine.faults_arc(),
            cost: engine.cost_model(),
            router: engine.router(),
            link_model: engine.link_model(),
            tracing: engine.tracing(),
            sink: engine.sink(),
        }
    }

    /// The topology.
    pub fn cube(&self) -> Hypercube {
        self.faults.cube()
    }

    /// The fault set.
    pub fn faults(&self) -> &FaultSet {
        &self.faults
    }

    /// The cost model.
    pub fn cost_model(&self) -> CostModel {
        self.cost
    }

    /// Runs `program` SPMD on every node for which `inputs` supplies data —
    /// same contract and same results as [`Engine::run`], on one thread.
    ///
    /// # Panics
    /// Propagates node-program panics, rejects inputs assigned to faulty
    /// processors, and panics immediately (with the wait map) if the
    /// programs deadlock.
    pub fn run<K, T, F>(&self, inputs: Vec<Option<Vec<K>>>, program: F) -> RunOutcome<T>
    where
        F: AsyncFn(&mut NodeCtx<K>, Vec<K>) -> T,
    {
        let cube = self.cube();
        validate_inputs(&self.faults, &inputs);

        if let Some(sink) = &self.sink {
            sink.lock().expect("trace sink lock poisoned").begin(
                cube.dim(),
                &self.cost,
                self.link_model,
            );
        }

        let (cells, participation) =
            build_cells(&inputs, cube.dim(), self.tracing, self.sink.is_some());

        let program = &program;
        // One resumable state machine per participating node, indexed by
        // address. The future owns its NodeCtx (moved into the async block),
        // so it is self-contained and type-erasable.
        let mut tasks: Vec<Option<Pin<Box<dyn Future<Output = T> + '_>>>> = Vec::new();
        let mut round: Vec<usize> = Vec::new();
        for (i, slot) in inputs.into_iter().enumerate() {
            let Some(input) = slot else {
                tasks.push(None);
                continue;
            };
            let ctx = NodeCtx::new_cell(
                NodeId::from(i),
                cube,
                Arc::clone(&self.faults),
                self.cost,
                self.router,
                CellCtx::new(Arc::clone(&cells[i]), Arc::clone(&participation)),
            );
            tasks.push(Some(Box::pin(async move {
                let mut ctx = ctx;
                program(&mut ctx, input).await
            })));
            round.push(i);
        }

        let mut results: Vec<Option<T>> = (0..cube.len()).map(|_| None).collect();
        let mut alive = round.clone();
        let mut next: Vec<usize> = Vec::new();
        let mut committer =
            RoundCommitter::new(self.sink.clone(), self.link_model, cube.dim(), self.cost);
        let mut poll_cx = Context::from_waker(Waker::noop());
        while !round.is_empty() {
            for &i in &round {
                let task = tasks[i].as_mut().expect("scheduled node has a task");
                match task.as_mut().poll(&mut poll_cx) {
                    Poll::Ready(value) => {
                        results[i] = Some(value);
                        tasks[i] = None;
                        cells[i].lock().expect("node cell lock poisoned").done = true;
                    }
                    Poll::Pending => {
                        debug_assert!(
                            cells[i]
                                .lock()
                                .expect("node cell lock poisoned")
                                .waiting
                                .is_some(),
                            "a pending node must be parked on a recv"
                        );
                    }
                }
            }
            committer.commit(&cells, &round, &mut alive, &mut next);
            std::mem::swap(&mut round, &mut next);
        }

        if !alive.is_empty() {
            deadlock_panic(&cells, alive.len());
        }

        // Release the contexts' Arc references so the cells unwrap cleanly.
        drop(tasks);
        collect_run(
            cells,
            results,
            &self.sink,
            cube.dim(),
            self.cost,
            self.link_model,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::super::{Comm, EngineKind, Tag};
    use super::*;
    use std::rc::Rc;

    fn engine(n: usize) -> SeqEngine {
        SeqEngine::fault_free(Hypercube::new(n), CostModel::paper_form())
    }

    #[test]
    fn runs_non_send_programs() {
        // Rc is !Send: this program cannot run on the threaded engine, but
        // the direct SeqEngine API accepts it.
        let eng = engine(1);
        let marker = Rc::new(7u32);
        let out = eng.run(
            (0..2).map(|i| Some(vec![i as u32])).collect(),
            async |ctx, data| {
                let theirs = ctx.exchange(ctx.me().neighbor(0), Tag::new(0), data).await;
                Rc::new(theirs[0] + *marker)
            },
        );
        let results = out.into_results();
        assert_eq!(*results[0].1, 8);
        assert_eq!(*results[1].1, 7);
    }

    #[test]
    fn virtual_times_reflect_sender_clocks() {
        // Node 1 does heavy local compute before its send; node 2 sends
        // immediately. Node 0 receives from both — the virtual times must
        // reflect each sender's own clock regardless of scheduling order.
        let eng = engine(2);
        let mut inputs: Vec<Option<Vec<u32>>> = vec![None; 4];
        inputs[0] = Some(vec![]);
        inputs[1] = Some(vec![]);
        inputs[2] = Some(vec![]);
        let out = eng.run(inputs, async |ctx, _| match ctx.me().raw() {
            0 => {
                let a = ctx.recv(NodeId::new(1), Tag::new(1)).await;
                let b = ctx.recv(NodeId::new(2), Tag::new(2)).await;
                (a[0], b[0])
            }
            1 => {
                ctx.charge_compute(1000.0);
                ctx.send(NodeId::new(0), Tag::new(1), vec![10]);
                (0, 0)
            }
            _ => {
                ctx.send(NodeId::new(0), Tag::new(2), vec![20]);
                (0, 0)
            }
        });
        assert_eq!(out.node(NodeId::new(0)).unwrap().result, (10, 20));
        let t0 = out.node(NodeId::new(0)).unwrap().clock;
        assert!(
            t0 >= 1000.0,
            "receiver clock {t0} must include the slow sender's compute"
        );
    }

    #[test]
    fn deadlock_panics_immediately_with_wait_map() {
        let eng = engine(1);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            eng.run(
                (0..2).map(|_| Some(Vec::<u32>::new())).collect(),
                async |ctx, _| {
                    // both nodes receive first: classic cycle
                    let partner = ctx.me().neighbor(0);
                    let got = ctx.recv(partner, Tag::new(3)).await;
                    ctx.send(partner, Tag::new(3), vec![1u32]);
                    got
                },
            );
        }));
        let err = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(err.contains("deadlock"), "{err}");
        assert!(err.contains("P0"), "{err}");
        assert!(err.contains("P1"), "{err}");
    }

    #[test]
    fn matches_engine_dispatch() {
        // SeqEngine reached through Engine::with_engine(Seq) is the same
        // machine as the direct constructor.
        let direct = engine(2).run(
            (0..4).map(|i| Some(vec![i as u32])).collect(),
            async |ctx, data| {
                let mut acc = data;
                for d in 0..ctx.cube().dim() {
                    let theirs = ctx
                        .exchange(ctx.me().neighbor(d), Tag::new(d as u64), acc.clone())
                        .await;
                    acc.extend(theirs);
                    acc.sort_unstable();
                }
                acc
            },
        );
        let via_engine = Engine::fault_free(Hypercube::new(2), CostModel::paper_form())
            .with_engine(EngineKind::Seq)
            .run(
                (0..4).map(|i| Some(vec![i as u32])).collect(),
                async |ctx, data| {
                    let mut acc = data;
                    for d in 0..ctx.cube().dim() {
                        let theirs = ctx
                            .exchange(ctx.me().neighbor(d), Tag::new(d as u64), acc.clone())
                            .await;
                        acc.extend(theirs);
                        acc.sort_unstable();
                    }
                    acc
                },
            );
        for (a, b) in direct.outcomes().iter().zip(via_engine.outcomes()) {
            let (Some(a), Some(b)) = (a, b) else {
                panic!("both engines must run every node")
            };
            assert_eq!(a.result, b.result);
            assert_eq!(a.clock, b.clock);
            assert_eq!(a.stats, b.stats);
        }
    }
}
