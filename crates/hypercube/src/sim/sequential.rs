//! The sequential event-driven engine: all node programs cooperatively
//! scheduled on one thread.
//!
//! Node programs are async state machines; a blocked [`Comm::recv`] parks
//! the node on a per-`(src, tag)` wait entry and returns `Pending`. The
//! scheduler keeps runnable nodes in a min-heap ordered by virtual clock and
//! always resumes the runnable node with the *lowest* virtual time — the
//! classic event-driven simulation discipline. A send checks the wait map
//! and, if the destination is parked on exactly that `(src, tag)`, makes it
//! runnable again.
//!
//! Compared to the threaded engine this removes all OS threads, channels,
//! context switches and payload copies (a message send hands over the
//! `Vec<K>` allocation to the receiver), while charging the *same* virtual
//! time through the same [`CostModel`]/[`VirtualClock`] calls in the same
//! per-node order — so clocks, statistics and traces are byte-identical
//! between the engines.
//!
//! Deadlock is detected exactly: if unfinished nodes remain but none is
//! runnable, the engine panics immediately with the full wait map instead of
//! waiting for a timeout.
//!
//! [`Comm::recv`]: super::Comm::recv

use super::engine::{
    trace_capacity, validate_inputs, Engine, NodeCtx, NodeOutcome, RouterKind, RunOutcome,
};
use super::trace::{Trace, TraceEvent, TraceKind};
use super::Tag;
use crate::address::NodeId;
use crate::cost::{CostModel, VirtualClock};
use crate::fault::FaultSet;
use crate::obs::sink::{NodeSummary, TraceSink};
use crate::obs::{NodeMetrics, SpanLog};
use crate::stats::RunStats;
use crate::topology::Hypercube;
use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Waker};

/// A message parked in the destination's inbox.
struct SeqMessage<K> {
    src: NodeId,
    tag: Tag,
    data: Vec<K>,
    sent_at: f64,
    hops: u32,
}

/// Per-node bookkeeping inside the shared scheduler state.
struct SeqNode {
    clock: VirtualClock,
    stats: RunStats,
    trace: Option<Vec<TraceEvent>>,
    /// Observability spans ([`super::Comm::span_enter`]).
    spans: SpanLog,
    /// Per-node utilization/communication metrics. `inbox_peak` here is
    /// exact and deterministic: the inbox length right after each enqueue.
    metrics: NodeMetrics,
    /// `Some((src, tag))` while the node is parked in a blocked `recv`.
    waiting: Option<(NodeId, Tag)>,
    participating: bool,
}

/// Scheduler state shared by all node contexts of one run.
struct SeqShared<K> {
    /// Per-destination inboxes, scanned front-to-back on `recv` so delivery
    /// stays FIFO per `(src, tag)` — the same order a channel gives. The
    /// algorithms keep each node's outstanding-message count small (cf. the
    /// threaded engine's `2·dim + 4` channel bound), so a linear scan of a
    /// short `Vec` beats hashing `(dst, src, tag)` triples — and unlike a
    /// map keyed by tag, consumed messages leave nothing behind.
    inboxes: Vec<Vec<SeqMessage<K>>>,
    nodes: Vec<SeqNode>,
    /// Nodes unparked by sends since the last scheduling step.
    woken: Vec<usize>,
}

impl<K> SeqShared<K> {
    fn take(&mut self, dst: NodeId, src: NodeId, tag: Tag) -> Option<SeqMessage<K>> {
        let inbox = &mut self.inboxes[dst.index()];
        let i = inbox.iter().position(|m| m.src == src && m.tag == tag)?;
        Some(inbox.remove(i))
    }
}

/// The sequential engine's half of a [`NodeCtx`].
pub(super) struct SeqCtx<K> {
    shared: Rc<RefCell<SeqShared<K>>>,
    /// Streaming trace sink, if one is attached. Kept outside the
    /// `RefCell` so it can be reached while `shared` is borrowed.
    sink: Option<Arc<Mutex<dyn TraceSink>>>,
}

impl<K> SeqCtx<K> {
    fn emit_event(&self, node: &mut SeqNode, ev: TraceEvent) {
        if let Some(trace) = &mut node.trace {
            trace.push(ev);
        }
        if let Some(sink) = &self.sink {
            sink.lock().expect("trace sink lock poisoned").event(&ev);
        }
    }

    pub(super) fn send(
        &mut self,
        me: NodeId,
        dst: NodeId,
        tag: Tag,
        data: Vec<K>,
        hops: u32,
        cost: CostModel,
    ) {
        let mut sh = self.shared.borrow_mut();
        assert!(
            sh.nodes[dst.index()].participating,
            "send to non-participating node {dst:?}"
        );
        let node = &mut sh.nodes[me.index()];
        // The sender's port is busy pushing the elements onto its first link.
        node.clock.advance(cost.transfer(data.len(), hops.min(1)));
        node.stats.record_message(data.len(), hops);
        node.metrics.on_send(me, dst, data.len(), hops);
        if node.trace.is_some() || self.sink.is_some() {
            let ev = TraceEvent {
                time: node.clock.now(),
                node: me,
                tag,
                kind: TraceKind::Send {
                    to: dst,
                    elements: data.len(),
                    hops,
                },
            };
            self.emit_event(node, ev);
        }
        let msg = SeqMessage {
            src: me,
            tag,
            data,
            sent_at: node.clock.now(),
            hops,
        };
        sh.inboxes[dst.index()].push(msg);
        let backlog = sh.inboxes[dst.index()].len() as u64;
        let dst_node = &mut sh.nodes[dst.index()];
        dst_node.metrics.inbox_peak = dst_node.metrics.inbox_peak.max(backlog);
        if sh.nodes[dst.index()].waiting == Some((me, tag)) {
            sh.nodes[dst.index()].waiting = None;
            sh.woken.push(dst.index());
        }
    }

    pub(super) async fn recv(
        &mut self,
        me: NodeId,
        src: NodeId,
        tag: Tag,
        cost: CostModel,
    ) -> Vec<K> {
        loop {
            {
                let mut sh = self.shared.borrow_mut();
                if let Some(msg) = sh.take(me, src, tag) {
                    let node = &mut sh.nodes[me.index()];
                    let before = node.clock.now();
                    node.clock
                        .receive(msg.sent_at, cost.transfer(msg.data.len(), msg.hops));
                    // Any forward jump is time spent waiting on the wire.
                    node.metrics.blocked_us += node.clock.now() - before;
                    node.metrics.msgs_received += 1;
                    if node.trace.is_some() || self.sink.is_some() {
                        let ev = TraceEvent {
                            time: node.clock.now(),
                            node: me,
                            tag,
                            kind: TraceKind::Recv {
                                from: src,
                                elements: msg.data.len(),
                            },
                        };
                        self.emit_event(node, ev);
                    }
                    return msg.data;
                }
                // Park: the matching send will clear this and requeue us.
                sh.nodes[me.index()].waiting = Some((src, tag));
            }
            PendOnce(false).await;
        }
    }

    pub(super) fn charge_comparisons(&mut self, me: NodeId, count: usize, cost: CostModel) {
        let mut sh = self.shared.borrow_mut();
        let node = &mut sh.nodes[me.index()];
        node.clock.advance(cost.compare(count));
        node.stats.record_comparisons(count);
        if node.trace.is_some() || self.sink.is_some() {
            let ev = TraceEvent {
                time: node.clock.now(),
                node: me,
                tag: Tag::new(0),
                kind: TraceKind::Compute { comparisons: count },
            };
            self.emit_event(node, ev);
        }
    }

    pub(super) fn span_enter(&mut self, me: NodeId, phase: u16) {
        let mut sh = self.shared.borrow_mut();
        let node = &mut sh.nodes[me.index()];
        let now = node.clock.now();
        node.spans.enter(phase, now);
        if let Some(sink) = &self.sink {
            sink.lock()
                .expect("trace sink lock poisoned")
                .span(me, Some(phase), now);
        }
    }

    pub(super) fn span_exit(&mut self, me: NodeId) {
        let mut sh = self.shared.borrow_mut();
        let node = &mut sh.nodes[me.index()];
        let now = node.clock.now();
        node.spans.exit(now);
        if let Some(sink) = &self.sink {
            sink.lock()
                .expect("trace sink lock poisoned")
                .span(me, None, now);
        }
    }

    pub(super) fn charge_compute(&mut self, me: NodeId, cost: f64) {
        self.shared.borrow_mut().nodes[me.index()]
            .clock
            .advance(cost);
    }

    pub(super) fn clock(&self, me: NodeId) -> f64 {
        self.shared.borrow().nodes[me.index()].clock.now()
    }
}

/// Yields exactly once, returning control to the scheduler.
struct PendOnce(bool);

impl Future for PendOnce {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
        if self.0 {
            Poll::Ready(())
        } else {
            self.0 = true;
            Poll::Pending
        }
    }
}

/// Min-heap key: virtual clock with a total order, ties broken by node index
/// (the `Ord` on the tuple) for determinism.
#[derive(PartialEq)]
struct ClockKey(f64);

impl Eq for ClockKey {}

impl PartialOrd for ClockKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ClockKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// The sequential run-to-completion engine.
///
/// Usually reached through [`Engine::run`] with [`EngineKind::Seq`]
/// (the default); constructing a `SeqEngine` directly gives the same
/// behavior with looser trait bounds (`K`/`T` need not be `Send`, the
/// program need not be `Sync`).
///
/// [`EngineKind::Seq`]: super::EngineKind::Seq
#[derive(Clone)]
pub struct SeqEngine {
    faults: Arc<FaultSet>,
    cost: CostModel,
    router: RouterKind,
    tracing: bool,
    sink: Option<Arc<Mutex<dyn TraceSink>>>,
}

impl SeqEngine {
    /// Creates a machine over the fault set's topology with the given cost
    /// model.
    pub fn new(faults: FaultSet, cost: CostModel) -> Self {
        SeqEngine {
            faults: Arc::new(faults),
            cost,
            router: RouterKind::default(),
            tracing: false,
            sink: None,
        }
    }

    /// A fault-free machine.
    pub fn fault_free(cube: Hypercube, cost: CostModel) -> Self {
        SeqEngine::new(FaultSet::none(cube), cost)
    }

    /// Selects the routing algorithm used to charge hops (builder style).
    pub fn with_router(mut self, router: RouterKind) -> Self {
        self.router = router;
        self
    }

    /// Enables per-event tracing (builder style).
    pub fn with_tracing(mut self) -> Self {
        self.tracing = true;
        self
    }

    /// Attaches a streaming trace sink (builder style). The sink receives
    /// every trace event and span transition as it is emitted, plus the
    /// run header/footer — see [`TraceSink`].
    pub fn with_trace_sink(mut self, sink: Arc<Mutex<dyn TraceSink>>) -> Self {
        self.sink = Some(sink);
        self
    }

    pub(super) fn from_engine(engine: &Engine) -> Self {
        SeqEngine {
            faults: engine.faults_arc(),
            cost: engine.cost_model(),
            router: engine.router(),
            tracing: engine.tracing(),
            sink: engine.sink(),
        }
    }

    /// The topology.
    pub fn cube(&self) -> Hypercube {
        self.faults.cube()
    }

    /// The fault set.
    pub fn faults(&self) -> &FaultSet {
        &self.faults
    }

    /// The cost model.
    pub fn cost_model(&self) -> CostModel {
        self.cost
    }

    /// Runs `program` SPMD on every node for which `inputs` supplies data —
    /// same contract and same results as [`Engine::run`], on one thread.
    ///
    /// # Panics
    /// Propagates node-program panics, rejects inputs assigned to faulty
    /// processors, and panics immediately (with the wait map) if the
    /// programs deadlock.
    pub fn run<K, T, F>(&self, inputs: Vec<Option<Vec<K>>>, program: F) -> RunOutcome<T>
    where
        F: AsyncFn(&mut NodeCtx<K>, Vec<K>) -> T,
    {
        let cube = self.cube();
        validate_inputs(&self.faults, &inputs);

        if let Some(sink) = &self.sink {
            sink.lock()
                .expect("trace sink lock poisoned")
                .begin(cube.dim(), &self.cost);
        }

        let shared = Rc::new(RefCell::new(SeqShared {
            inboxes: (0..inputs.len()).map(|_| Vec::new()).collect(),
            nodes: inputs
                .iter()
                .map(|slot| SeqNode {
                    clock: VirtualClock::new(),
                    stats: RunStats::new(),
                    trace: (self.tracing && slot.is_some())
                        .then(|| Vec::with_capacity(trace_capacity(cube.dim()))),
                    spans: SpanLog::new(),
                    metrics: NodeMetrics::new(cube.dim()),
                    waiting: None,
                    participating: slot.is_some(),
                })
                .collect(),
            woken: Vec::new(),
        }));

        let program = &program;
        // One resumable state machine per participating node, indexed by
        // address. The future owns its NodeCtx (moved into the async block),
        // so it is self-contained and type-erasable.
        let mut tasks: Vec<Option<Pin<Box<dyn Future<Output = T> + '_>>>> = Vec::new();
        let mut heap: BinaryHeap<Reverse<(ClockKey, usize)>> = BinaryHeap::new();
        let mut remaining = 0usize;
        for (i, slot) in inputs.into_iter().enumerate() {
            let Some(input) = slot else {
                tasks.push(None);
                continue;
            };
            let ctx = NodeCtx::new_seq(
                NodeId::from(i),
                cube,
                Arc::clone(&self.faults),
                self.cost,
                self.router,
                SeqCtx {
                    shared: Rc::clone(&shared),
                    sink: self.sink.clone(),
                },
            );
            tasks.push(Some(Box::pin(async move {
                let mut ctx = ctx;
                program(&mut ctx, input).await
            })));
            heap.push(Reverse((ClockKey(0.0), i)));
            remaining += 1;
        }

        let mut results: Vec<Option<T>> = (0..cube.len()).map(|_| None).collect();
        let mut poll_cx = Context::from_waker(Waker::noop());
        while let Some(Reverse((_, i))) = heap.pop() {
            let task = tasks[i].as_mut().expect("scheduled node has a task");
            match task.as_mut().poll(&mut poll_cx) {
                Poll::Ready(value) => {
                    results[i] = Some(value);
                    tasks[i] = None;
                    remaining -= 1;
                }
                Poll::Pending => {
                    debug_assert!(
                        shared.borrow().nodes[i].waiting.is_some(),
                        "a pending node must be parked on a recv"
                    );
                }
            }
            // Requeue nodes this step's sends made runnable, at their
            // current virtual time. (Take the buffer out to keep its
            // capacity without holding the borrow across the heap pushes.)
            let mut sh = shared.borrow_mut();
            let mut woken = std::mem::take(&mut sh.woken);
            for w in woken.drain(..) {
                heap.push(Reverse((ClockKey(sh.nodes[w].clock.now()), w)));
            }
            sh.woken = woken;
        }

        if remaining > 0 {
            let sh = shared.borrow();
            let parked: Vec<String> = sh
                .nodes
                .iter()
                .enumerate()
                .filter_map(|(i, n)| {
                    n.waiting
                        .map(|(src, tag)| format!("P{i} waits for ({src:?}, {tag:?})"))
                })
                .collect();
            panic!(
                "deadlock: no runnable node, {remaining} unfinished [{}]",
                parked.join("; ")
            );
        }

        let shared = Rc::into_inner(shared)
            .expect("all node contexts dropped with their tasks")
            .into_inner();
        let mut outcomes: Vec<Option<NodeOutcome<T>>> = Vec::with_capacity(cube.len());
        let mut traces = Vec::new();
        for (i, (result, node)) in results.into_iter().zip(shared.nodes).enumerate() {
            match result {
                Some(result) => {
                    let clock = node.clock.now();
                    outcomes.push(Some(NodeOutcome {
                        result,
                        clock,
                        stats: node.stats,
                        spans: node.spans.finish(clock),
                        metrics: node.metrics,
                    }));
                    traces.push(node.trace.unwrap_or_default());
                }
                None => {
                    debug_assert!(!node.participating, "participant P{i} lost its result");
                    outcomes.push(None);
                }
            }
        }
        if let Some(sink) = &self.sink {
            let summaries: Vec<NodeSummary> = outcomes
                .iter()
                .enumerate()
                .filter_map(|(i, o)| {
                    o.as_ref().map(|o| NodeSummary {
                        node: NodeId::from(i),
                        clock: o.clock,
                        blocked_us: o.metrics.blocked_us,
                        inbox_peak: o.metrics.inbox_peak,
                    })
                })
                .collect();
            sink.lock()
                .expect("trace sink lock poisoned")
                .finish(&summaries);
        }
        RunOutcome::new(outcomes, Trace::assemble(traces), cube.dim(), self.cost)
    }
}

#[cfg(test)]
mod tests {
    use super::super::{Comm, EngineKind};
    use super::*;

    fn engine(n: usize) -> SeqEngine {
        SeqEngine::fault_free(Hypercube::new(n), CostModel::paper_form())
    }

    #[test]
    fn runs_non_send_programs() {
        // Rc is !Send: this program cannot run on the threaded engine, but
        // the direct SeqEngine API accepts it.
        let eng = engine(1);
        let marker = Rc::new(7u32);
        let out = eng.run(
            (0..2).map(|i| Some(vec![i as u32])).collect(),
            async |ctx, data| {
                let theirs = ctx.exchange(ctx.me().neighbor(0), Tag::new(0), data).await;
                Rc::new(theirs[0] + *marker)
            },
        );
        let results = out.into_results();
        assert_eq!(*results[0].1, 8);
        assert_eq!(*results[1].1, 7);
    }

    #[test]
    fn scheduler_resumes_lowest_clock_first() {
        // Node 1 does heavy local compute before its send; node 2 sends
        // immediately. Node 0 receives from both — the virtual times must
        // reflect each sender's own clock regardless of scheduling order.
        let eng = engine(2);
        let mut inputs: Vec<Option<Vec<u32>>> = vec![None; 4];
        inputs[0] = Some(vec![]);
        inputs[1] = Some(vec![]);
        inputs[2] = Some(vec![]);
        let out = eng.run(inputs, async |ctx, _| match ctx.me().raw() {
            0 => {
                let a = ctx.recv(NodeId::new(1), Tag::new(1)).await;
                let b = ctx.recv(NodeId::new(2), Tag::new(2)).await;
                (a[0], b[0])
            }
            1 => {
                ctx.charge_compute(1000.0);
                ctx.send(NodeId::new(0), Tag::new(1), vec![10]);
                (0, 0)
            }
            _ => {
                ctx.send(NodeId::new(0), Tag::new(2), vec![20]);
                (0, 0)
            }
        });
        assert_eq!(out.node(NodeId::new(0)).unwrap().result, (10, 20));
        let t0 = out.node(NodeId::new(0)).unwrap().clock;
        assert!(
            t0 >= 1000.0,
            "receiver clock {t0} must include the slow sender's compute"
        );
    }

    #[test]
    fn deadlock_panics_immediately_with_wait_map() {
        let eng = engine(1);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            eng.run(
                (0..2).map(|_| Some(Vec::<u32>::new())).collect(),
                async |ctx, _| {
                    // both nodes receive first: classic cycle
                    let partner = ctx.me().neighbor(0);
                    let got = ctx.recv(partner, Tag::new(3)).await;
                    ctx.send(partner, Tag::new(3), vec![1u32]);
                    got
                },
            );
        }));
        let err = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(err.contains("deadlock"), "{err}");
        assert!(err.contains("P0"), "{err}");
        assert!(err.contains("P1"), "{err}");
    }

    #[test]
    fn matches_engine_dispatch() {
        // SeqEngine reached through Engine::with_engine(Seq) is the same
        // machine as the direct constructor.
        let direct = engine(2).run(
            (0..4).map(|i| Some(vec![i as u32])).collect(),
            async |ctx, data| {
                let mut acc = data;
                for d in 0..ctx.cube().dim() {
                    let theirs = ctx
                        .exchange(ctx.me().neighbor(d), Tag::new(d as u64), acc.clone())
                        .await;
                    acc.extend(theirs);
                    acc.sort_unstable();
                }
                acc
            },
        );
        let via_engine = Engine::fault_free(Hypercube::new(2), CostModel::paper_form())
            .with_engine(EngineKind::Seq)
            .run(
                (0..4).map(|i| Some(vec![i as u32])).collect(),
                async |ctx, data| {
                    let mut acc = data;
                    for d in 0..ctx.cube().dim() {
                        let theirs = ctx
                            .exchange(ctx.me().neighbor(d), Tag::new(d as u64), acc.clone())
                            .await;
                        acc.extend(theirs);
                        acc.sort_unstable();
                    }
                    acc
                },
            );
        for (a, b) in direct.outcomes().iter().zip(via_engine.outcomes()) {
            let (Some(a), Some(b)) = (a, b) else {
                panic!("both engines must run every node")
            };
            assert_eq!(a.result, b.result);
            assert_eq!(a.clock, b.clock);
            assert_eq!(a.stats, b.stats);
        }
    }
}
