//! The hypercube interconnection topology `Q_n`.
//!
//! `Q_n` has `N = 2^n` processors; processor `u` is linked to the `n`
//! processors whose addresses differ from `u` in exactly one bit. Diameter
//! and node degree are both `n = log₂ N` — the low-diameter, high-connectivity
//! properties that made hypercube multicomputers (Cosmic Cube, NCUBE, iPSC)
//! attractive.

use crate::address::NodeId;
use crate::subcube::Subcube;

/// An `n`-dimensional binary hypercube topology.
#[derive(Clone, Copy, PartialEq, Eq, Debug, serde::Serialize, serde::Deserialize)]
pub struct Hypercube {
    n: u8,
}

impl Hypercube {
    /// Creates `Q_n`.
    ///
    /// # Panics
    /// If `n` exceeds [`crate::address::MAX_DIM`].
    pub fn new(n: usize) -> Self {
        assert!(
            n <= crate::address::MAX_DIM,
            "hypercube dimension {n} exceeds MAX_DIM"
        );
        Hypercube { n: n as u8 }
    }

    /// The dimension `n`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.n as usize
    }

    /// The number of processors `N = 2^n`.
    #[inline]
    pub fn len(&self) -> usize {
        1usize << self.n
    }

    /// A hypercube always has at least one node (`Q_0` is a single node).
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether `node` is a valid address in this hypercube.
    #[inline]
    pub fn contains(&self, node: NodeId) -> bool {
        (node.raw() as u64) < (1u64 << self.n)
    }

    /// All node addresses in ascending order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.len() as u32).map(NodeId::new)
    }

    /// The `n` neighbors of `node`, ordered by dimension.
    pub fn neighbors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        debug_assert!(self.contains(node));
        (0..self.dim()).map(move |d| node.neighbor(d))
    }

    /// Whether `a` and `b` are joined by a link.
    #[inline]
    pub fn adjacent(&self, a: NodeId, b: NodeId) -> bool {
        a.hamming(b) == 1
    }

    /// Graph distance between `a` and `b` (Hamming distance).
    #[inline]
    pub fn distance(&self, a: NodeId, b: NodeId) -> u32 {
        a.hamming(b)
    }

    /// The topology diameter, `n`.
    #[inline]
    pub fn diameter(&self) -> usize {
        self.dim()
    }

    /// Number of bidirectional links, `n · 2^(n-1)`.
    #[inline]
    pub fn link_count(&self) -> usize {
        if self.n == 0 {
            0
        } else {
            self.dim() << (self.dim() - 1)
        }
    }

    /// The whole cube as a [`Subcube`].
    #[inline]
    pub fn as_subcube(&self) -> Subcube {
        Subcube::whole(self.dim())
    }

    /// The canonical bisection of `Q_n` along dimension `d` used by bitonic
    /// sorting: `(u_d = 0, u_d = 1)` halves.
    pub fn bisect(&self, d: usize) -> (Subcube, Subcube) {
        self.as_subcube().split(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q6_is_ncube7_sized() {
        // The paper's testbed: NCUBE/7 with 64 processors.
        let q6 = Hypercube::new(6);
        assert_eq!(q6.len(), 64);
        assert_eq!(q6.diameter(), 6);
        assert_eq!(q6.link_count(), 6 * 32);
    }

    #[test]
    fn q0_is_a_single_node() {
        let q0 = Hypercube::new(0);
        assert_eq!(q0.len(), 1);
        assert_eq!(q0.link_count(), 0);
        assert_eq!(q0.nodes().count(), 1);
    }

    #[test]
    fn every_node_has_n_distinct_neighbors() {
        let q = Hypercube::new(5);
        for u in q.nodes() {
            let nbrs: Vec<NodeId> = q.neighbors(u).collect();
            assert_eq!(nbrs.len(), 5);
            for (d, &v) in nbrs.iter().enumerate() {
                assert!(q.adjacent(u, v));
                assert_eq!(u.raw() ^ v.raw(), 1 << d);
            }
        }
    }

    #[test]
    fn adjacency_is_symmetric_and_irreflexive() {
        let q = Hypercube::new(4);
        for a in q.nodes() {
            assert!(!q.adjacent(a, a));
            for b in q.nodes() {
                assert_eq!(q.adjacent(a, b), q.adjacent(b, a));
            }
        }
    }

    #[test]
    fn distance_equals_shortest_path_length() {
        // BFS-verified on Q4.
        let q = Hypercube::new(4);
        for s in q.nodes() {
            let mut dist = vec![u32::MAX; q.len()];
            dist[s.index()] = 0;
            let mut frontier = std::collections::VecDeque::from([s]);
            while let Some(u) = frontier.pop_front() {
                for v in q.neighbors(u) {
                    if dist[v.index()] == u32::MAX {
                        dist[v.index()] = dist[u.index()] + 1;
                        frontier.push_back(v);
                    }
                }
            }
            for t in q.nodes() {
                assert_eq!(q.distance(s, t), dist[t.index()]);
            }
        }
    }

    #[test]
    fn bisect_gives_two_half_cubes() {
        let q = Hypercube::new(6);
        for d in 0..6 {
            let (lo, hi) = q.bisect(d);
            assert_eq!(lo.len(), 32);
            assert_eq!(hi.len(), 32);
            assert!(lo.is_disjoint(&hi));
        }
    }
}
