//! Message routing in (possibly faulty) hypercubes.
//!
//! The NCUBE/7's VERTEX kernel routes with the classic *e-cube* (dimension
//! order) algorithm: correct the differing address bits from the lowest
//! dimension to the highest. Under the **partial** fault model the e-cube
//! path is always usable because faulty processors still relay messages.
//! Under the **total** fault model (paper §4, after Chen & Shin's adaptive
//! fault-tolerant routing) paths must avoid faulty processors; we provide a
//! shortest detour router for that case.

use crate::address::NodeId;
use crate::fault::{FaultModel, FaultSet};
use crate::topology::Hypercube;
use std::collections::VecDeque;

/// A route through the hypercube: the full node sequence, source first and
/// destination last. `hops() == path.len() - 1`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Route {
    path: Vec<NodeId>,
}

impl Route {
    /// The node sequence, source first.
    pub fn path(&self) -> &[NodeId] {
        &self.path
    }

    /// Number of links traversed.
    pub fn hops(&self) -> u32 {
        (self.path.len() - 1) as u32
    }

    /// The source node.
    pub fn source(&self) -> NodeId {
        self.path[0]
    }

    /// The destination node.
    pub fn destination(&self) -> NodeId {
        *self.path.last().expect("route is never empty")
    }

    /// Checks the route is a valid walk in `cube` (every step crosses one
    /// link).
    pub fn is_valid(&self, cube: &Hypercube) -> bool {
        self.path.windows(2).all(|w| cube.adjacent(w[0], w[1]))
            && self.path.iter().all(|p| cube.contains(*p))
    }
}

/// The dimension-order (e-cube) route from `src` to `dst`: differing bits are
/// corrected lowest dimension first. Deterministic and minimal
/// (`hops == Hamming distance`), but oblivious to faults.
pub fn ecube_route(src: NodeId, dst: NodeId) -> Route {
    let mut path = vec![src];
    let mut cur = src;
    let mut diff = src.raw() ^ dst.raw();
    while diff != 0 {
        let d = diff.trailing_zeros() as usize;
        cur = cur.neighbor(d);
        path.push(cur);
        diff &= diff - 1;
    }
    Route { path }
}

/// Routes `src → dst` under the given fault set and its fault model.
///
/// * [`FaultModel::Partial`]: returns the e-cube route (faulty processors
///   relay — exactly what the paper's NCUBE implementation relies on).
/// * [`FaultModel::Total`]: returns a shortest route whose *intermediate*
///   nodes are all normal, found by breadth-first search. Returns `None` if
///   `dst` is unreachable (cannot happen when `r ≤ n − 1` and both endpoints
///   are normal).
///
/// Endpoints themselves are allowed to be faulty only under `Partial`.
///
/// ```
/// use hypercube::prelude::*;
/// use hypercube::routing::route;
///
/// let faults = FaultSet::from_raw(Hypercube::new(3), &[0b001]).with_model(FaultModel::Total);
/// let r = route(&faults, NodeId::new(0b000), NodeId::new(0b011)).unwrap();
/// assert_eq!(r.hops(), 2); // detours 000 → 010 → 011 around the dead 001
/// assert!(r.path().iter().all(|p| faults.is_normal(*p)));
/// ```
pub fn route(faults: &FaultSet, src: NodeId, dst: NodeId) -> Option<Route> {
    let cube = faults.cube();
    assert!(
        cube.contains(src) && cube.contains(dst),
        "endpoint outside cube"
    );
    match faults.model() {
        FaultModel::Partial if faults.link_fault_count() == 0 => Some(ecube_route(src, dst)),
        FaultModel::Partial => {
            // faulty processors still relay, but broken links are physical
            bfs_route(faults, src, dst, |_| true)
        }
        FaultModel::Total => {
            if faults.is_faulty(src) || faults.is_faulty(dst) {
                return None;
            }
            bfs_route(faults, src, dst, |p| faults.is_normal(p))
        }
    }
}

/// Shortest route from `src` to `dst` whose intermediate nodes satisfy
/// `passable` and whose links are all healthy. Expansion prefers e-cube
/// order so the fault-free result coincides with [`ecube_route`].
fn bfs_route(
    faults: &FaultSet,
    src: NodeId,
    dst: NodeId,
    passable: impl Fn(NodeId) -> bool,
) -> Option<Route> {
    let cube = faults.cube();
    if src == dst {
        return Some(Route { path: vec![src] });
    }
    let mut prev: Vec<Option<NodeId>> = vec![None; cube.len()];
    let mut seen = vec![false; cube.len()];
    seen[src.index()] = true;
    let mut queue = VecDeque::new();
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        // expand dimensions in e-cube order: differing-low bits first
        let diff = u.raw() ^ dst.raw();
        let order = (0..cube.dim())
            .filter(move |d| diff >> d & 1 == 1)
            .chain((0..cube.dim()).filter(move |d| diff >> d & 1 == 0));
        for d in order {
            let v = u.neighbor(d);
            if seen[v.index()] || faults.is_link_faulty(u, v) {
                continue;
            }
            if v != dst && !passable(v) {
                continue;
            }
            seen[v.index()] = true;
            prev[v.index()] = Some(u);
            if v == dst {
                let mut path = vec![v];
                let mut cur = v;
                while let Some(p) = prev[cur.index()] {
                    path.push(p);
                    cur = p;
                }
                path.reverse();
                return Some(Route { path });
            }
            queue.push_back(v);
        }
    }
    None
}

/// Depth-first adaptive routing (after Chen & Shin's fault-tolerant routing,
/// which the paper cites for making faults "total"-safe): unlike
/// [`route`]'s BFS — an omniscient oracle — this router uses only knowledge
/// a real node has: its own neighbors' health. At each step it prefers a
/// *profitable* dimension (one that corrects a differing address bit),
/// falls back to a detour dimension otherwise, and backtracks when stuck;
/// a visited set guarantees termination.
///
/// Returns a (possibly non-minimal) route avoiding faulty nodes and links,
/// or `None` when `dst` is unreachable.
pub fn adaptive_route(faults: &FaultSet, src: NodeId, dst: NodeId) -> Option<Route> {
    let cube = faults.cube();
    assert!(
        cube.contains(src) && cube.contains(dst),
        "endpoint outside cube"
    );
    let blocked_node = |p: NodeId| match faults.model() {
        FaultModel::Partial => false,
        FaultModel::Total => faults.is_faulty(p),
    };
    if blocked_node(src) || blocked_node(dst) {
        return None;
    }
    let mut visited = vec![false; cube.len()];
    visited[src.index()] = true;
    // `stack` is the DFS path; `walk` is the physical message trajectory,
    // which also records backtracking hops (a real message must travel back)
    let mut stack = vec![src];
    let mut walk = vec![src];
    'outer: while *stack.last().expect("non-empty") != dst {
        let u = *stack.last().expect("non-empty");
        let diff = u.raw() ^ dst.raw();
        // profitable dimensions first (e-cube order), then detours
        let order = (0..cube.dim())
            .filter(|d| diff >> d & 1 == 1)
            .chain((0..cube.dim()).filter(|d| diff >> d & 1 == 0));
        for d in order {
            let v = u.neighbor(d);
            if visited[v.index()] || faults.is_link_faulty(u, v) || blocked_node(v) {
                continue;
            }
            visited[v.index()] = true;
            stack.push(v);
            walk.push(v);
            continue 'outer;
        }
        // dead end: physically backtrack one hop
        stack.pop();
        match stack.last() {
            Some(&back) => walk.push(back),
            None => return None,
        }
    }
    Some(Route { path: walk })
}

/// The number of hops a message from `src` to `dst` takes under `faults`.
///
/// This is the quantity the paper charges `t_{s/r}` per element per hop; in
/// step 7(a) corresponding reindexed processors of neighboring subcubes are
/// up to `s + 1` hops apart.
pub fn hop_count(faults: &FaultSet, src: NodeId, dst: NodeId) -> Option<u32> {
    if matches!(faults.model(), FaultModel::Partial) && faults.link_fault_count() == 0 {
        // The e-cube route visits exactly the Hamming distance in hops; skip
        // materializing the path so per-message hop charging stays
        // allocation-free.
        let cube = faults.cube();
        assert!(
            cube.contains(src) && cube.contains(dst),
            "endpoint outside cube"
        );
        return Some((src.raw() ^ dst.raw()).count_ones());
    }
    route(faults, src, dst).map(|r| r.hops())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(n: usize) -> Hypercube {
        Hypercube::new(n)
    }

    #[test]
    fn ecube_route_is_minimal_and_dimension_ordered() {
        let r = ecube_route(NodeId::new(0b000), NodeId::new(0b101));
        assert_eq!(
            r.path(),
            &[NodeId::new(0b000), NodeId::new(0b001), NodeId::new(0b101)]
        );
        assert_eq!(r.hops(), 2);
        assert!(r.is_valid(&q(3)));
    }

    #[test]
    fn ecube_route_to_self_is_trivial() {
        let r = ecube_route(NodeId::new(5), NodeId::new(5));
        assert_eq!(r.hops(), 0);
        assert_eq!(r.source(), r.destination());
    }

    #[test]
    fn ecube_hops_equal_hamming_distance() {
        for a in 0..16u32 {
            for b in 0..16u32 {
                let r = ecube_route(NodeId::new(a), NodeId::new(b));
                assert_eq!(r.hops(), NodeId::new(a).hamming(NodeId::new(b)));
                assert!(r.is_valid(&q(4)));
            }
        }
    }

    #[test]
    fn partial_model_routes_through_faulty_relays() {
        let faults = FaultSet::from_raw(q(3), &[0b001]).with_model(FaultModel::Partial);
        let r = route(&faults, NodeId::new(0b000), NodeId::new(0b011)).unwrap();
        // e-cube path 000 → 001 → 011 goes through the faulty relay; that is
        // exactly the VERTEX behaviour the paper describes.
        assert_eq!(r.path()[1], NodeId::new(0b001));
        assert_eq!(r.hops(), 2);
    }

    #[test]
    fn total_model_detours_around_faults() {
        let faults = FaultSet::from_raw(q(3), &[0b001]).with_model(FaultModel::Total);
        let r = route(&faults, NodeId::new(0b000), NodeId::new(0b011)).unwrap();
        assert!(r.is_valid(&q(3)));
        assert!(r.path().iter().all(|p| !faults.is_faulty(*p)));
        // detour 000 → 010 → 011 still has 2 hops
        assert_eq!(r.hops(), 2);
    }

    #[test]
    fn total_model_may_need_longer_paths() {
        // Kill both shortest-path intermediates between 00 and 11 in... Q2 has
        // only 2 disjoint paths; use Q3: src 000, dst 011; kill 001 and 010.
        let faults = FaultSet::from_raw(q(3), &[0b001, 0b010]).with_model(FaultModel::Total);
        let r = route(&faults, NodeId::new(0b000), NodeId::new(0b011)).unwrap();
        assert!(r.path().iter().all(|p| !faults.is_faulty(*p)));
        assert_eq!(r.hops(), 4, "must detour through the u2=1 half");
        assert!(r.is_valid(&q(3)));
    }

    #[test]
    fn total_model_unreachable_when_isolated() {
        // Q2: node 0 isolated by killing 1 and 2.
        let faults = FaultSet::from_raw(q(2), &[1, 2]).with_model(FaultModel::Total);
        assert!(route(&faults, NodeId::new(0), NodeId::new(3)).is_none());
    }

    #[test]
    fn total_model_faulty_endpoint_rejected() {
        let faults = FaultSet::from_raw(q(3), &[0]).with_model(FaultModel::Total);
        assert!(route(&faults, NodeId::new(0), NodeId::new(1)).is_none());
        assert!(route(&faults, NodeId::new(1), NodeId::new(0)).is_none());
    }

    #[test]
    fn total_model_matches_ecube_when_fault_free() {
        let faults = FaultSet::none(q(4)).with_model(FaultModel::Total);
        for a in 0..16u32 {
            for b in 0..16u32 {
                let r = route(&faults, NodeId::new(a), NodeId::new(b)).unwrap();
                assert_eq!(r.hops(), NodeId::new(a).hamming(NodeId::new(b)));
            }
        }
    }

    #[test]
    fn total_model_always_reaches_within_tolerance() {
        // For r ≤ n-1 every pair of normal nodes stays connected.
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(99);
        for n in 2..=6 {
            for r in 0..n {
                let faults = FaultSet::random(q(n), r, &mut rng).with_model(FaultModel::Total);
                let normals: Vec<NodeId> = faults.normal_nodes().collect();
                for &a in normals.iter().take(8) {
                    for &b in normals.iter().rev().take(8) {
                        assert!(
                            route(&faults, a, b).is_some(),
                            "n={n} r={r}: {a:?} → {b:?} unreachable"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn partial_model_detours_around_faulty_links() {
        use crate::fault::Link;
        // break the (0,1) link: e-cube route 000→001 must detour to 3 hops
        let faults = FaultSet::none(q(3)).with_faulty_links([Link::new(NodeId::new(0), 0)]);
        let r = route(&faults, NodeId::new(0), NodeId::new(1)).unwrap();
        assert_eq!(r.hops(), 3);
        assert!(r.is_valid(&q(3)));
        assert!(r
            .path()
            .windows(2)
            .all(|w| !faults.is_link_faulty(w[0], w[1])));
    }

    #[test]
    fn total_model_avoids_both_faulty_nodes_and_links() {
        use crate::fault::Link;
        let faults = FaultSet::from_raw(q(3), &[0b001])
            .with_model(FaultModel::Total)
            .with_faulty_links([Link::new(NodeId::new(0), 1)]);
        // 000 → 011: avoid node 001 and link (000,010): forced through bit 2
        let r = route(&faults, NodeId::new(0), NodeId::new(0b011)).unwrap();
        assert!(r.path().iter().all(|p| !faults.is_faulty(*p)));
        assert!(r
            .path()
            .windows(2)
            .all(|w| !faults.is_link_faulty(w[0], w[1])));
        assert_eq!(r.hops(), 4);
    }

    #[test]
    fn unreachable_when_links_isolate() {
        use crate::fault::Link;
        let all = [0usize, 1].map(|d| Link::new(NodeId::new(0), d));
        let faults = FaultSet::none(q(2)).with_faulty_links(all);
        assert!(route(&faults, NodeId::new(0), NodeId::new(3)).is_none());
    }

    #[test]
    fn adaptive_route_matches_ecube_when_fault_free() {
        let faults = FaultSet::none(q(4));
        for a in 0..16u32 {
            for b in 0..16u32 {
                let r = adaptive_route(&faults, NodeId::new(a), NodeId::new(b)).unwrap();
                assert_eq!(r.hops(), NodeId::new(a).hamming(NodeId::new(b)));
                assert!(r.is_valid(&q(4)));
            }
        }
    }

    #[test]
    fn adaptive_route_delivers_under_random_total_faults() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(51);
        for n in 3..=6 {
            for _ in 0..30 {
                let faults = FaultSet::random(q(n), n - 1, &mut rng).with_model(FaultModel::Total);
                let normals: Vec<NodeId> = faults.normal_nodes().collect();
                for &a in normals.iter().take(4) {
                    for &b in normals.iter().rev().take(4) {
                        let r = adaptive_route(&faults, a, b)
                            .unwrap_or_else(|| panic!("n={n}: {a:?}→{b:?} undelivered"));
                        assert!(r.is_valid(&q(n)));
                        assert_eq!(r.source(), a);
                        assert_eq!(r.destination(), b);
                        assert!(r.path().iter().all(|p| faults.is_normal(*p)));
                        // never longer than the oracle + backtracking slack
                        let oracle = route(&faults, a, b).unwrap().hops();
                        assert!(r.hops() >= oracle);
                        assert!(r.hops() <= 2 * (1 << n), "runaway walk");
                    }
                }
            }
        }
    }

    #[test]
    fn adaptive_route_backtracks_out_of_dead_ends() {
        use crate::fault::Link;
        // Q3: force 0 → 7 into a cul-de-sac: break links so the e-cube
        // preference leads to node 3 whose remaining exits are cut.
        let faults = FaultSet::none(q(3)).with_faulty_links([
            Link::new(NodeId::new(3), 2), // 3-7
            Link::new(NodeId::new(2), 0), // 2-3
        ]);
        let r = adaptive_route(&faults, NodeId::new(0), NodeId::new(7)).unwrap();
        assert_eq!(r.destination(), NodeId::new(7));
        assert!(r
            .path()
            .windows(2)
            .all(|w| q(3).adjacent(w[0], w[1]) && !faults.is_link_faulty(w[0], w[1])));
    }

    #[test]
    fn adaptive_route_returns_none_when_isolated() {
        let faults = FaultSet::from_raw(q(2), &[1, 2]).with_model(FaultModel::Total);
        assert!(adaptive_route(&faults, NodeId::new(0), NodeId::new(3)).is_none());
    }

    #[test]
    fn hop_count_is_at_least_hamming() {
        let faults = FaultSet::from_raw(q(4), &[1, 2, 4]).with_model(FaultModel::Total);
        for a in faults.normal_nodes() {
            for b in faults.normal_nodes() {
                let h = hop_count(&faults, a, b).unwrap();
                assert!(h >= a.hamming(b));
                assert_eq!(h % 2, a.hamming(b) % 2, "hypercube is bipartite");
            }
        }
    }
}
