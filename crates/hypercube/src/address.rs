//! Node addresses and bit-level utilities for hypercube topologies.
//!
//! A node of an `n`-dimensional hypercube `Q_n` is addressed by an `n`-bit
//! binary string `u_{n-1} u_{n-2} … u_0`; two nodes are neighbors exactly when
//! their addresses differ in a single bit. The paper indexes dimensions from
//! the least significant bit (`dimension 0` flips `u_0`).

use std::fmt;

/// Maximum supported hypercube dimension.
///
/// Addresses are stored in a `u32`, so up to `Q_32` is representable; in
/// practice simulation sizes stay far below this (the paper's machine is
/// `Q_6` — an NCUBE/7 with 64 processors).
pub const MAX_DIM: usize = 32;

/// Address of one processor in a hypercube.
///
/// `NodeId` is a thin wrapper over the binary address. It is meaningful only
/// relative to a dimension `n` (carried by [`crate::topology::Hypercube`] or
/// passed explicitly); the wrapper itself does not store `n`.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, serde::Serialize, serde::Deserialize,
)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Creates a node address from its integer value.
    #[inline]
    pub const fn new(raw: u32) -> Self {
        NodeId(raw)
    }

    /// The raw integer address.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// The address as an index into per-node arrays.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The neighbor of this node along dimension `d` (flip bit `d`).
    #[inline]
    pub const fn neighbor(self, d: usize) -> Self {
        NodeId(self.0 ^ (1 << d))
    }

    /// Value of address bit `d` (`0` or `1`).
    #[inline]
    pub const fn bit(self, d: usize) -> u32 {
        (self.0 >> d) & 1
    }

    /// Returns `self` with bit `d` set to `v` (`v` must be 0 or 1).
    #[inline]
    pub const fn with_bit(self, d: usize, v: u32) -> Self {
        NodeId((self.0 & !(1 << d)) | ((v & 1) << d))
    }

    /// Hamming distance between two addresses: the length of a shortest
    /// routing path between the nodes in a fault-free hypercube.
    #[inline]
    pub const fn hamming(self, other: Self) -> u32 {
        (self.0 ^ other.0).count_ones()
    }

    /// Parity of the address (`true` when the address value is even).
    ///
    /// The paper's algorithms direct each processor's local sort *ascending*
    /// when its (reindexed) address is even and *descending* when odd.
    #[inline]
    pub const fn is_even(self) -> bool {
        self.0 & 1 == 0
    }

    /// XOR-translation of this address by `mask`.
    ///
    /// XOR by a fixed mask is an automorphism of the hypercube (it preserves
    /// adjacency), which is what makes the paper's *reindex* operation sound:
    /// relabeling every node `u` as `u ⊕ f` moves the faulty node `f` to
    /// logical address 0 without changing the communication structure.
    #[inline]
    pub const fn xor(self, mask: u32) -> Self {
        NodeId(self.0 ^ mask)
    }

    /// Formats the address as an `n`-bit binary string `u_{n-1}…u_0`.
    pub fn to_bits(self, n: usize) -> String {
        debug_assert!(n <= MAX_DIM);
        (0..n)
            .rev()
            .map(|d| if self.bit(d) == 1 { '1' } else { '0' })
            .collect()
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(raw: u32) -> Self {
        NodeId(raw)
    }
}

impl From<usize> for NodeId {
    fn from(raw: usize) -> Self {
        NodeId(raw as u32)
    }
}

/// Returns the bits of `value` extracted at the positions listed in `dims`,
/// packed into a new integer: bit `i` of the result is bit `dims[i]` of
/// `value`.
///
/// This is the paper's address split: for a cutting dimension sequence
/// `D = (d₁, …, d_m)` the *subcube address* of node `u` is
/// `v_{m-1}…v_0 = u_{d_m} … u_{d_1}` (so `dims` is in ascending order and
/// `v_i = u_{d_{i+1}}`).
#[inline]
pub fn extract_bits(value: u32, dims: &[usize]) -> u32 {
    let mut out = 0u32;
    for (i, &d) in dims.iter().enumerate() {
        out |= ((value >> d) & 1) << i;
    }
    out
}

/// Inverse of [`extract_bits`]: scatters bit `i` of `packed` to position
/// `dims[i]` of the result. Bits outside `dims` are zero.
#[inline]
pub fn scatter_bits(packed: u32, dims: &[usize]) -> u32 {
    let mut out = 0u32;
    for (i, &d) in dims.iter().enumerate() {
        out |= ((packed >> i) & 1) << d;
    }
    out
}

/// The dimensions of `Q_n` *not* present in `dims`, in ascending order.
///
/// For a cutting sequence `D` these are the `s = n − m` dimensions that form
/// the local (within-subcube) address space `w_{s-1}…w_0`.
pub fn complement_dims(n: usize, dims: &[usize]) -> Vec<usize> {
    (0..n).filter(|d| !dims.contains(d)).collect()
}

/// Reflected binary Gray code of `i`: consecutive values differ in one bit.
///
/// Gray sequences give Hamiltonian paths/cycles in hypercubes and are used by
/// the ring embedding in [`crate::embedding`].
#[inline]
pub const fn gray(i: u32) -> u32 {
    i ^ (i >> 1)
}

/// Inverse Gray code: `gray_inverse(gray(i)) == i`.
#[inline]
pub const fn gray_inverse(mut g: u32) -> u32 {
    let mut i = g;
    loop {
        g >>= 1;
        if g == 0 {
            return i;
        }
        i ^= g;
    }
}

/// Position of the single set bit of `x`; panics unless `x` is a power of
/// two. Useful to recover the dimension along which two neighbors differ.
#[inline]
pub fn single_bit_dim(x: u32) -> usize {
    assert_eq!(x.count_ones(), 1, "addresses are not hypercube neighbors");
    x.trailing_zeros() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neighbor_flips_exactly_one_bit() {
        let p = NodeId::new(0b01011);
        for d in 0..5 {
            let q = p.neighbor(d);
            assert_eq!(p.hamming(q), 1);
            assert_eq!(single_bit_dim(p.raw() ^ q.raw()), d);
            assert_eq!(q.neighbor(d), p, "neighbor is an involution");
        }
    }

    #[test]
    fn bit_accessors_roundtrip() {
        let p = NodeId::new(0b10110);
        assert_eq!(p.bit(0), 0);
        assert_eq!(p.bit(1), 1);
        assert_eq!(p.bit(2), 1);
        assert_eq!(p.bit(3), 0);
        assert_eq!(p.bit(4), 1);
        assert_eq!(p.with_bit(0, 1), NodeId::new(0b10111));
        assert_eq!(p.with_bit(4, 0), NodeId::new(0b00110));
        assert_eq!(p.with_bit(2, 1), p);
    }

    #[test]
    fn hamming_distance_examples_from_paper() {
        // Example 2 of the paper: HD(01,10)=2, HD(00,01)=1, HD(10,10)=0.
        assert_eq!(NodeId::new(0b01).hamming(NodeId::new(0b10)), 2);
        assert_eq!(NodeId::new(0b00).hamming(NodeId::new(0b01)), 1);
        assert_eq!(NodeId::new(0b10).hamming(NodeId::new(0b10)), 0);
    }

    #[test]
    fn xor_reindex_moves_fault_to_zero_and_preserves_adjacency() {
        let fault = NodeId::new(0b01101);
        assert_eq!(fault.xor(fault.raw()), NodeId::new(0));
        // adjacency preserved for every pair of neighbors
        for u in 0..32u32 {
            for d in 0..5 {
                let a = NodeId::new(u).xor(fault.raw());
                let b = NodeId::new(u).neighbor(d).xor(fault.raw());
                assert_eq!(a.hamming(b), 1);
            }
        }
    }

    #[test]
    fn to_bits_formats_msb_first() {
        assert_eq!(NodeId::new(0b00011).to_bits(5), "00011");
        assert_eq!(NodeId::new(0b11000).to_bits(5), "11000");
        assert_eq!(NodeId::new(0).to_bits(3), "000");
    }

    #[test]
    fn extract_and_scatter_are_inverse() {
        // The paper's Q5 example: D = (0,1,3) so subcube bits are u3 u1 u0
        // and local bits are u4 u2.
        let dims = [0usize, 1, 3];
        let local = [2usize, 4];
        // FP2 = 00101: v = u3 u1 u0 = 0,0,1 = 001; w = u4 u2 = 0,1 = 01.
        let fp2 = 0b00101;
        assert_eq!(extract_bits(fp2, &dims), 0b001);
        assert_eq!(extract_bits(fp2, &local), 0b01);
        assert_eq!(scatter_bits(0b001, &dims) | scatter_bits(0b01, &local), fp2);
        // FP3 = 10000: v = 000, w = 10.
        let fp3 = 0b10000;
        assert_eq!(extract_bits(fp3, &dims), 0b000);
        assert_eq!(extract_bits(fp3, &local), 0b10);
    }

    #[test]
    fn complement_dims_partitions_dimensions() {
        assert_eq!(complement_dims(5, &[0, 1, 3]), vec![2, 4]);
        assert_eq!(complement_dims(4, &[1, 3]), vec![0, 2]);
        assert_eq!(complement_dims(3, &[]), vec![0, 1, 2]);
        assert_eq!(complement_dims(3, &[0, 1, 2]), Vec::<usize>::new());
    }

    #[test]
    fn gray_code_adjacent_values_differ_by_one_bit() {
        for i in 0..255u32 {
            assert_eq!((gray(i) ^ gray(i + 1)).count_ones(), 1);
        }
    }

    #[test]
    fn gray_inverse_roundtrips() {
        for i in 0..1024u32 {
            assert_eq!(gray_inverse(gray(i)), i);
        }
    }

    #[test]
    fn parity_matches_paper_convention() {
        assert!(NodeId::new(0).is_even());
        assert!(!NodeId::new(0b101).is_even());
        assert!(NodeId::new(0b110).is_even());
    }

    #[test]
    #[should_panic(expected = "not hypercube neighbors")]
    fn single_bit_dim_rejects_non_neighbors() {
        single_bit_dim(0b101);
    }
}
