//! Vendored stand-in for the `serde` crate (the build environment has no
//! network access to crates.io). The workspace uses serde only to *mark*
//! types with `#[derive(serde::Serialize, serde::Deserialize)]`; actual
//! report output is hand-written JSON/CSV. The derive macros here expand to
//! nothing, keeping those derive lists compiling unchanged.

pub use serde_derive::{Deserialize, Serialize};
