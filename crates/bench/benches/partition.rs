//! Criterion bench: the partition algorithm (the `O(rN)` search behind
//! Table 1) across cube dimensions and fault counts.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ft_bench::random_faults;
use ftsort::partition::partition;
use ftsort::select::select_cutting_sequence;
use std::hint::black_box;

fn bench_partition(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition");
    for (n, r) in [(4usize, 3usize), (6, 5), (8, 7), (10, 9)] {
        group.bench_function(format!("n{n}_r{r}"), |b| {
            let mut rng = ft_bench::rng(7);
            b.iter_batched(
                || random_faults(n, r, &mut rng),
                |faults| black_box(partition(&faults).unwrap()),
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("selection");
    for (n, r) in [(6usize, 5usize), (8, 7)] {
        group.bench_function(format!("n{n}_r{r}"), |b| {
            let mut rng = ft_bench::rng(11);
            b.iter_batched(
                || {
                    let faults = random_faults(n, r, &mut rng);
                    let psi = partition(&faults).unwrap().cutting_set;
                    (faults, psi)
                },
                |(faults, psi)| black_box(select_cutting_sequence(&faults, &psi)),
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_partition, bench_selection);
criterion_main!(benches);
