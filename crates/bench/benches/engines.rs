//! Ablation B: fault-model routing cost (partial vs total faults) and
//! step-8 strategy (bitonic merge vs the paper's literal full sort),
//! plus an engine wall-clock group whose rows carry a per-phase
//! breakdown of each iteration's wall time (via `iter_spanned`).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ft_bench::{random_faults, random_keys};
use ftsort::bitonic::Protocol;
use ftsort::ftsort::{
    fault_tolerant_sort, fault_tolerant_sort_configured, fault_tolerant_sort_observed, FtConfig,
    FtPlan, Step8Strategy,
};
use hypercube::cost::CostModel;
use hypercube::fault::FaultModel;
use hypercube::sim::EngineKind;
use std::hint::black_box;
use std::time::Instant;

const M: usize = 16_000;

fn bench_fault_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("fault_model");
    group.sample_size(20);
    for model in [FaultModel::Partial, FaultModel::Total] {
        group.bench_function(format!("{model:?}"), |b| {
            let mut rng = ft_bench::rng(6);
            let faults = random_faults(6, 5, &mut rng).with_model(model);
            b.iter_batched(
                || random_keys(M, &mut rng),
                |data| {
                    black_box(
                        fault_tolerant_sort(
                            &faults,
                            CostModel::default(),
                            data,
                            Protocol::HalfExchange,
                        )
                        .unwrap(),
                    )
                },
                BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn bench_step8_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("step8_strategy");
    group.sample_size(20);
    let mut rng = ft_bench::rng(7);
    let faults = random_faults(6, 5, &mut rng);
    let plan = FtPlan::new(&faults).unwrap();
    for step8 in [Step8Strategy::BitonicMerge, Step8Strategy::FullSort] {
        group.bench_function(format!("{step8:?}"), |b| {
            b.iter_batched(
                || random_keys(M, &mut rng),
                |data| {
                    black_box(fault_tolerant_sort_configured(
                        &plan,
                        &FtConfig {
                            step8,
                            ..FtConfig::default()
                        },
                        data,
                    ))
                },
                BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn bench_routers(c: &mut Criterion) {
    use hypercube::sim::RouterKind;
    let mut group = c.benchmark_group("router");
    group.sample_size(20);
    let mut rng = ft_bench::rng(8);
    let faults = random_faults(6, 5, &mut rng).with_model(FaultModel::Total);
    let plan = FtPlan::new(&faults).unwrap();
    for router in [RouterKind::Oracle, RouterKind::Adaptive] {
        group.bench_function(format!("{router:?}"), |b| {
            b.iter_batched(
                || random_keys(M, &mut rng),
                |data| {
                    black_box(fault_tolerant_sort_configured(
                        &plan,
                        &FtConfig {
                            router,
                            ..FtConfig::default()
                        },
                        data,
                    ))
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_engine_wall(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_wall");
    group.sample_size(10);
    let mut rng = ft_bench::rng(9);
    let faults = random_faults(6, 5, &mut rng);
    let plan = FtPlan::new(&faults).unwrap();
    let data = random_keys(M, &mut rng);
    for engine in [EngineKind::Threaded, EngineKind::Seq, EngineKind::Par] {
        group.bench_function(format!("{engine:?}"), |b| {
            let config = FtConfig {
                protocol: Protocol::HalfExchange,
                engine,
                ..FtConfig::default()
            };
            b.iter_spanned(|rec| {
                let input = data.clone();
                let start = Instant::now();
                let (out, phases, _) = fault_tolerant_sort_observed(&plan, &config, input);
                let wall = start.elapsed();
                // Attribute the iteration's wall clock across the sort's
                // phases in proportion to their virtual-time split — the
                // engines interleave phases across host threads, so the
                // virtual profile is the only consistent attribution base.
                let split = [
                    ("scatter", phases.host_scatter_us),
                    ("step3", phases.step3_us),
                    ("step7", phases.step7_us),
                    ("step8", phases.step8_us),
                    ("gather", phases.host_gather_us),
                ];
                let total: f64 = split.iter().map(|(_, us)| us).sum();
                if total > 0.0 {
                    for (name, us) in split {
                        if us > 0.0 {
                            rec.record(name, wall.mul_f64(us / total));
                        }
                    }
                }
                black_box(out)
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_fault_models,
    bench_step8_strategies,
    bench_routers,
    bench_engine_wall
);
criterion_main!(benches);
