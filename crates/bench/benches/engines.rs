//! Ablation B: fault-model routing cost (partial vs total faults) and
//! step-8 strategy (bitonic merge vs the paper's literal full sort).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ft_bench::{random_faults, random_keys};
use ftsort::bitonic::Protocol;
use ftsort::ftsort::{
    fault_tolerant_sort, fault_tolerant_sort_configured, FtConfig, FtPlan, Step8Strategy,
};
use hypercube::cost::CostModel;
use hypercube::fault::FaultModel;
use std::hint::black_box;

const M: usize = 16_000;

fn bench_fault_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("fault_model");
    group.sample_size(20);
    for model in [FaultModel::Partial, FaultModel::Total] {
        group.bench_function(format!("{model:?}"), |b| {
            let mut rng = ft_bench::rng(6);
            let faults = random_faults(6, 5, &mut rng).with_model(model);
            b.iter_batched(
                || random_keys(M, &mut rng),
                |data| {
                    black_box(
                        fault_tolerant_sort(
                            &faults,
                            CostModel::default(),
                            data,
                            Protocol::HalfExchange,
                        )
                        .unwrap(),
                    )
                },
                BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn bench_step8_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("step8_strategy");
    group.sample_size(20);
    let mut rng = ft_bench::rng(7);
    let faults = random_faults(6, 5, &mut rng);
    let plan = FtPlan::new(&faults).unwrap();
    for step8 in [Step8Strategy::BitonicMerge, Step8Strategy::FullSort] {
        group.bench_function(format!("{step8:?}"), |b| {
            b.iter_batched(
                || random_keys(M, &mut rng),
                |data| {
                    black_box(fault_tolerant_sort_configured(
                        &plan,
                        &FtConfig {
                            step8,
                            ..FtConfig::default()
                        },
                        data,
                    ))
                },
                BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn bench_routers(c: &mut Criterion) {
    use hypercube::sim::RouterKind;
    let mut group = c.benchmark_group("router");
    group.sample_size(20);
    let mut rng = ft_bench::rng(8);
    let faults = random_faults(6, 5, &mut rng).with_model(FaultModel::Total);
    let plan = FtPlan::new(&faults).unwrap();
    for router in [RouterKind::Oracle, RouterKind::Adaptive] {
        group.bench_function(format!("{router:?}"), |b| {
            b.iter_batched(
                || random_keys(M, &mut rng),
                |data| {
                    black_box(fault_tolerant_sort_configured(
                        &plan,
                        &FtConfig {
                            router,
                            ..FtConfig::default()
                        },
                        data,
                    ))
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_fault_models,
    bench_step8_strategies,
    bench_routers
);
criterion_main!(benches);
