//! Criterion bench for the compare-split merge kernels: the owning forms
//! (`merge_runs`, `merge_keep_low`) versus the buffer-reuse `_into` forms
//! that power the zero-allocation hot path. Both forms perform identical
//! comparison sequences; the difference measured here is pure allocator
//! traffic.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use ftsort::seq::{
    merge_keep_high_into, merge_keep_low, merge_keep_low_into, merge_runs, merge_runs_into,
};
use std::hint::black_box;

/// Two sorted runs of `k` keys each, deterministic but interleaved.
fn runs(k: usize) -> (Vec<u32>, Vec<u32>) {
    let mut rng = ft_bench::rng(0x6d65_7267);
    let mut a = ft_bench::random_keys(k, &mut rng);
    let mut b = ft_bench::random_keys(k, &mut rng);
    a.sort_unstable();
    b.sort_unstable();
    (a, b)
}

fn bench_merge_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("merge_runs");
    for k in [1_000usize, 10_000] {
        group.throughput(Throughput::Elements(2 * k as u64));
        let (a, b) = runs(k);
        group.bench_function(format!("owning_k{k}"), |b_| {
            b_.iter_batched(
                || (a.clone(), b.clone()),
                |(a, b)| black_box(merge_runs(a, b)),
                BatchSize::SmallInput,
            );
        });
        group.bench_function(format!("into_k{k}"), |b_| {
            // buffer reuse: `out` persists across iterations, and the drained
            // inputs keep their capacity, so refilling them is a memcpy
            let mut out = Vec::with_capacity(2 * k);
            let mut ka = Vec::with_capacity(k);
            let mut kb = Vec::with_capacity(k);
            b_.iter(|| {
                ka.clear();
                ka.extend_from_slice(&a);
                kb.clear();
                kb.extend_from_slice(&b);
                black_box(merge_runs_into(&mut ka, &mut kb, &mut out))
            });
        });
    }
    group.finish();
}

fn bench_merge_keep_low(c: &mut Criterion) {
    let mut group = c.benchmark_group("merge_keep_low");
    for k in [1_000usize, 10_000] {
        group.throughput(Throughput::Elements(2 * k as u64));
        let (a, b) = runs(k);
        group.bench_function(format!("owning_k{k}"), |b_| {
            b_.iter_batched(
                || (a.clone(), b.clone()),
                |(a, b)| black_box(merge_keep_low(a, b, k)),
                BatchSize::SmallInput,
            );
        });
        group.bench_function(format!("into_k{k}"), |b_| {
            let mut out = Vec::with_capacity(k);
            let mut ka = Vec::with_capacity(k);
            let mut kb = Vec::with_capacity(k);
            b_.iter(|| {
                ka.clear();
                ka.extend_from_slice(&a);
                kb.clear();
                kb.extend_from_slice(&b);
                black_box(merge_keep_low_into(&mut ka, &mut kb, k, &mut out))
            });
        });
    }
    group.finish();
}

fn bench_merge_keep_high_into(c: &mut Criterion) {
    let mut group = c.benchmark_group("merge_keep_high");
    for k in [1_000usize, 10_000] {
        group.throughput(Throughput::Elements(2 * k as u64));
        let (a, b) = runs(k);
        group.bench_function(format!("into_k{k}"), |b_| {
            let mut out = Vec::with_capacity(k);
            let mut ka = Vec::with_capacity(k);
            let mut kb = Vec::with_capacity(k);
            b_.iter(|| {
                ka.clear();
                ka.extend_from_slice(&a);
                kb.clear();
                kb.extend_from_slice(&b);
                black_box(merge_keep_high_into(&mut ka, &mut kb, k, &mut out))
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_merge_runs,
    bench_merge_keep_low,
    bench_merge_keep_high_into
);
criterion_main!(benches);
