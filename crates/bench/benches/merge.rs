//! Criterion bench for the compare-split merge kernels.
//!
//! Two axes are measured:
//!
//! 1. **Owning vs `_into`** — the buffer-reuse forms that power the
//!    zero-allocation hot path versus their allocating counterparts. Both
//!    perform identical comparison sequences; the difference is pure
//!    allocator traffic.
//! 2. **Scalar vs branchless vs blocked** — the reference kernel against
//!    the branchless (cmov-select) and cache-blocked (merge-path) kernels,
//!    per key type (`u32`/`u64`/`i64`/key+payload pair) at sizes spanning
//!    L1, L2 and L3. All variants are pinned to identical outputs and
//!    comparison counts by `crates/core/tests/kernel_diff.rs`; only the
//!    host wall clock may differ. Each row reports throughput
//!    (elements/sec) and an `iter_spanned` phase split, so the buffer
//!    refill is visible separately from the merge proper — compare the
//!    `merge` span medians across kernels, not the totals.

use criterion::{
    criterion_group, criterion_main, BatchSize, BenchmarkGroup, Criterion, Throughput,
};
use ft_bench::GenKey;
use ftsort::seq::{
    merge_keep_high_branchless_into, merge_keep_high_into, merge_keep_low,
    merge_keep_low_branchless_into, merge_keep_low_into, merge_runs, merge_runs_blocked_into,
    merge_runs_branchless_into, merge_runs_into,
};
use std::hint::black_box;
use std::time::Instant;

/// Two sorted runs of `k` keys each, deterministic but interleaved.
fn runs(k: usize) -> (Vec<u32>, Vec<u32>) {
    let mut rng = ft_bench::rng(0x6d65_7267);
    let mut a = ft_bench::random_keys(k, &mut rng);
    let mut b = ft_bench::random_keys(k, &mut rng);
    a.sort_unstable();
    b.sort_unstable();
    (a, b)
}

/// Typed variant of [`runs`] for the kernel matrix.
fn sorted_runs<K: GenKey>(k: usize, salt: u64) -> (Vec<K>, Vec<K>) {
    let mut rng = ft_bench::rng(0x6d65_7267 ^ salt);
    let mut a: Vec<K> = ft_bench::random_keys_typed(k, &mut rng);
    let mut b: Vec<K> = ft_bench::random_keys_typed(k, &mut rng);
    a.sort_unstable();
    b.sort_unstable();
    (a, b)
}

fn bench_merge_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("merge_runs");
    for k in [1_000usize, 10_000] {
        group.throughput(Throughput::Elements(2 * k as u64));
        let (a, b) = runs(k);
        group.bench_function(format!("owning_k{k}"), |b_| {
            b_.iter_batched(
                || (a.clone(), b.clone()),
                |(a, b)| black_box(merge_runs(a, b)),
                BatchSize::SmallInput,
            );
        });
        group.bench_function(format!("into_k{k}"), |b_| {
            // buffer reuse: `out` persists across iterations, and the drained
            // inputs keep their capacity, so refilling them is a memcpy
            let mut out = Vec::with_capacity(2 * k);
            let mut ka = Vec::with_capacity(k);
            let mut kb = Vec::with_capacity(k);
            b_.iter(|| {
                ka.clear();
                ka.extend_from_slice(&a);
                kb.clear();
                kb.extend_from_slice(&b);
                black_box(merge_runs_into(&mut ka, &mut kb, &mut out))
            });
        });
    }
    group.finish();
}

/// Per-run lengths for the kernel matrix: with `u64` keys the merged total
/// is 32 KiB (fits L1), 512 KiB (around L2 — the blocking threshold), and
/// 8 MiB (L3/DRAM, where the blocked kernel's segmentation pays off).
const KERNEL_SIZES: [usize; 3] = [2_048, 32_768, 524_288];

/// Scalar vs branchless vs blocked for one key type. Rows are labeled
/// `<key>/<kernel>/k<len>`; the `merge` span median is the kernel-only
/// wall clock (the `refill` span is the shared memcpy cost of restoring
/// the drained inputs each iteration).
fn bench_kernels_for<K: GenKey>(group: &mut BenchmarkGroup<'_>, key_type: &str) {
    type Kernel<K> = fn(&mut Vec<K>, &mut Vec<K>, &mut Vec<K>) -> u64;
    for k in KERNEL_SIZES {
        group.throughput(Throughput::Elements(2 * k as u64));
        let (a, b) = sorted_runs::<K>(k, k as u64);
        let kernels: [(&str, Kernel<K>); 3] = [
            ("scalar", merge_runs_into),
            ("branchless", merge_runs_branchless_into),
            ("blocked", merge_runs_blocked_into),
        ];
        for (name, kernel) in kernels {
            group.bench_function(format!("{key_type}/{name}/k{k}"), |b_| {
                let mut out = Vec::with_capacity(2 * k);
                let mut ka = Vec::with_capacity(k);
                let mut kb = Vec::with_capacity(k);
                b_.iter_spanned(|rec| {
                    let t0 = Instant::now();
                    ka.clear();
                    ka.extend_from_slice(&a);
                    kb.clear();
                    kb.extend_from_slice(&b);
                    rec.record("refill", t0.elapsed());
                    let t1 = Instant::now();
                    let c = kernel(&mut ka, &mut kb, &mut out);
                    rec.record("merge", t1.elapsed());
                    black_box(c)
                });
            });
        }
    }
}

fn bench_merge_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("merge_kernels");
    bench_kernels_for::<u32>(&mut group, "u32");
    bench_kernels_for::<u64>(&mut group, "u64");
    bench_kernels_for::<i64>(&mut group, "i64");
    // key+payload row: 16-byte elements, ordering on (key, payload)
    bench_kernels_for::<ftsort::seq::KeyPair>(&mut group, "pair");
    group.finish();
}

fn bench_merge_keep_low(c: &mut Criterion) {
    let mut group = c.benchmark_group("merge_keep_low");
    for k in [1_000usize, 10_000] {
        group.throughput(Throughput::Elements(2 * k as u64));
        let (a, b) = runs(k);
        group.bench_function(format!("owning_k{k}"), |b_| {
            b_.iter_batched(
                || (a.clone(), b.clone()),
                |(a, b)| black_box(merge_keep_low(a, b, k)),
                BatchSize::SmallInput,
            );
        });
        group.bench_function(format!("into_k{k}"), |b_| {
            let mut out = Vec::with_capacity(k);
            let mut ka = Vec::with_capacity(k);
            let mut kb = Vec::with_capacity(k);
            b_.iter(|| {
                ka.clear();
                ka.extend_from_slice(&a);
                kb.clear();
                kb.extend_from_slice(&b);
                black_box(merge_keep_low_into(&mut ka, &mut kb, k, &mut out))
            });
        });
        group.bench_function(format!("branchless_k{k}"), |b_| {
            let mut out = Vec::with_capacity(k);
            let mut ka = Vec::with_capacity(k);
            let mut kb = Vec::with_capacity(k);
            b_.iter(|| {
                ka.clear();
                ka.extend_from_slice(&a);
                kb.clear();
                kb.extend_from_slice(&b);
                black_box(merge_keep_low_branchless_into(
                    &mut ka, &mut kb, k, &mut out,
                ))
            });
        });
    }
    group.finish();
}

fn bench_merge_keep_high_into(c: &mut Criterion) {
    let mut group = c.benchmark_group("merge_keep_high");
    for k in [1_000usize, 10_000] {
        group.throughput(Throughput::Elements(2 * k as u64));
        let (a, b) = runs(k);
        group.bench_function(format!("into_k{k}"), |b_| {
            let mut out = Vec::with_capacity(k);
            let mut ka = Vec::with_capacity(k);
            let mut kb = Vec::with_capacity(k);
            b_.iter(|| {
                ka.clear();
                ka.extend_from_slice(&a);
                kb.clear();
                kb.extend_from_slice(&b);
                black_box(merge_keep_high_into(&mut ka, &mut kb, k, &mut out))
            });
        });
        group.bench_function(format!("branchless_k{k}"), |b_| {
            let mut out = Vec::with_capacity(k);
            let mut ka = Vec::with_capacity(k);
            let mut kb = Vec::with_capacity(k);
            b_.iter(|| {
                ka.clear();
                ka.extend_from_slice(&a);
                kb.clear();
                kb.extend_from_slice(&b);
                black_box(merge_keep_high_branchless_into(
                    &mut ka, &mut kb, k, &mut out,
                ))
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_merge_runs,
    bench_merge_kernels,
    bench_merge_keep_low,
    bench_merge_keep_high_into
);
criterion_main!(benches);
