//! Ablation A: the paper's half-exchange compare-split protocol vs the
//! classic full exchange, in the context of a complete fault-tolerant sort.
//! Reports both wall-clock (criterion) and, via the `sort` bin outputs,
//! the simulated-time difference.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ft_bench::{random_faults, random_keys};
use ftsort::bitonic::Protocol;
use ftsort::ftsort::fault_tolerant_sort;
use hypercube::cost::CostModel;
use std::hint::black_box;

const M: usize = 32_000;

fn bench_protocols(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol_ablation");
    group.sample_size(20);
    for protocol in [Protocol::FullExchange, Protocol::HalfExchange] {
        group.bench_function(format!("{protocol:?}"), |b| {
            let mut rng = ft_bench::rng(5);
            let faults = random_faults(6, 4, &mut rng);
            b.iter_batched(
                || random_keys(M, &mut rng),
                |data| {
                    black_box(
                        fault_tolerant_sort(&faults, CostModel::default(), data, protocol).unwrap(),
                    )
                },
                BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_protocols);
criterion_main!(benches);
