//! Criterion bench: wall-clock time of the simulated sorts (Figure 7's
//! configurations at a fixed M), plus the sequential kernels.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use ft_bench::{random_faults, random_keys};
use ftsort::bitonic::{bitonic_sort, Protocol};
use ftsort::ftsort::fault_tolerant_sort;
use ftsort::mffs::mffs_sort;
use ftsort::seq::{heapsort, Direction};
use hypercube::cost::CostModel;
use hypercube::topology::Hypercube;
use std::hint::black_box;

const M: usize = 32_000;

fn bench_heapsort(c: &mut Criterion) {
    let mut group = c.benchmark_group("heapsort");
    for k in [1_000usize, 10_000] {
        group.throughput(Throughput::Elements(k as u64));
        group.bench_function(format!("k{k}"), |b| {
            let mut rng = ft_bench::rng(1);
            b.iter_batched(
                || random_keys(k, &mut rng),
                |mut v| black_box(heapsort(&mut v, Direction::Ascending)),
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_fault_free(c: &mut Criterion) {
    let mut group = c.benchmark_group("bitonic_fault_free");
    group.sample_size(20);
    for n in [3usize, 5, 6] {
        group.throughput(Throughput::Elements(M as u64));
        group.bench_function(format!("q{n}"), |b| {
            let mut rng = ft_bench::rng(2);
            b.iter_batched(
                || random_keys(M, &mut rng),
                |data| {
                    black_box(bitonic_sort(
                        Hypercube::new(n),
                        CostModel::default(),
                        data,
                        Protocol::HalfExchange,
                    ))
                },
                BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn bench_ft_sort(c: &mut Criterion) {
    let mut group = c.benchmark_group("fault_tolerant_sort");
    group.sample_size(20);
    for (n, r) in [(5usize, 2usize), (5, 4), (6, 3), (6, 5)] {
        group.throughput(Throughput::Elements(M as u64));
        group.bench_function(format!("q{n}_r{r}"), |b| {
            let mut rng = ft_bench::rng(3);
            let faults = random_faults(n, r, &mut rng);
            b.iter_batched(
                || random_keys(M, &mut rng),
                |data| {
                    black_box(
                        fault_tolerant_sort(
                            &faults,
                            CostModel::default(),
                            data,
                            Protocol::HalfExchange,
                        )
                        .unwrap(),
                    )
                },
                BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn bench_mffs(c: &mut Criterion) {
    let mut group = c.benchmark_group("mffs_baseline");
    group.sample_size(20);
    for (n, r) in [(5usize, 4usize), (6, 5)] {
        group.throughput(Throughput::Elements(M as u64));
        group.bench_function(format!("q{n}_r{r}"), |b| {
            let mut rng = ft_bench::rng(4);
            let faults = random_faults(n, r, &mut rng);
            b.iter_batched(
                || random_keys(M, &mut rng),
                |data| {
                    black_box(mffs_sort(
                        &faults,
                        CostModel::default(),
                        data,
                        Protocol::HalfExchange,
                    ))
                },
                BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_heapsort,
    bench_fault_free,
    bench_ft_sort,
    bench_mffs
);
criterion_main!(benches);
