//! Monte-Carlo fault-campaign driver: executes the seeded run matrix of
//! [`hypercube::obs::campaign`] across a std-thread job pool and feeds the
//! deterministic aggregation + outlier-forensics pipeline.
//!
//! Layering: `hypercube::obs::campaign` owns the run-summary type, the
//! online aggregators, the report/tables and the outlier policy — but that
//! crate simulates machines and cannot *plan* a fault-tolerant sort. This
//! module is the downstream half that can: it draws fault placements and
//! keys, runs [`fault_tolerant_sort_observed`] per placement, and
//! re-executes the selected outlier/median runs with a streaming sink to
//! capture gzip v2 run files.
//!
//! # Determinism contract
//!
//! * Every run's RNG is a **pure function of (campaign seed, run index)**
//!   — [`derive_run_seed`], a splitmix64 finalizer — so any run can be
//!   reproduced in isolation and the job count cannot perturb the draws.
//! * Workers claim run indices from an atomic cursor and write results
//!   into an index-addressed slot table; the single merge pass then walks
//!   the table **in ascending run index order**, fixing the float
//!   accumulation order. Campaign output is therefore byte-identical at
//!   any `--jobs`.
//! * Outlier/median selection happens *after* the merge pass, from the
//!   final report — and the capture re-runs are seeded reproductions of
//!   the originals, so captured run-file bytes are jobs-independent too.

use crate::{random_faults, random_keys_typed, GenKey};
use ftsort::ftsort::{fault_tolerant_sort_observed, fault_tolerant_sort_streamed, phase_name};
use ftsort::ftsort::{FtConfig, FtPlan};
use ftsort::seq::KeyType;
use hypercube::obs::campaign::{CampaignAccumulator, CampaignMetrics, CampaignReport, RunSummary};
use hypercube::obs::sink::{StreamingSink, TraceSink};
use hypercube::sim::LinkModel;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// The campaign matrix and execution knobs.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Cube dimensions to sweep.
    pub sizes: Vec<usize>,
    /// Fault counts to sweep (cells with `r > n − 1` are skipped — the
    /// paper only guarantees a feasible structure up to `n − 1` faults).
    pub fault_counts: Vec<usize>,
    /// Random fault placements per (n, r) cell.
    pub runs_per_cell: usize,
    /// Total elements sorted per run.
    pub m_total: usize,
    /// Campaign seed; per-run seeds derive from it ([`derive_run_seed`]).
    pub seed: u64,
    /// Worker threads executing runs (≥ 1; purely wall-clock).
    pub jobs: usize,
    /// Key type of every run.
    pub key_type: KeyType,
    /// Link pricing model of every run.
    pub link_model: LinkModel,
    /// When set, outlier and median-exemplar run files (gzip v2) plus
    /// their live `RunReport` JSONs are captured into this directory.
    pub capture_dir: Option<PathBuf>,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            sizes: vec![5],
            fault_counts: vec![3],
            runs_per_cell: 256,
            m_total: 4000,
            seed: crate::DEFAULT_SEED,
            jobs: std::thread::available_parallelism().map_or(1, |p| p.get()),
            key_type: KeyType::I64,
            link_model: LinkModel::Uncontended,
            capture_dir: None,
        }
    }
}

/// Everything a campaign produced.
pub struct CampaignOutcome {
    /// The deterministic aggregate (serialize with
    /// [`CampaignReport::to_json`], render with
    /// [`CampaignReport::tables`]).
    pub report: CampaignReport,
    /// Per-run summaries in run-index order (for offline recomputation
    /// and tests; empty summaries only when every run failed).
    pub summaries: Vec<RunSummary>,
    /// Run files captured to `capture_dir`, in capture order.
    pub captures: Vec<PathBuf>,
    /// (n, r) combinations skipped because `r > n − 1`.
    pub skipped_cells: Vec<(usize, usize)>,
}

/// Derives the RNG seed of run `run_index` from the campaign seed — a
/// splitmix64 finalizer over the pair, so neighbouring indices get
/// decorrelated streams and any run is reproducible in isolation.
pub fn derive_run_seed(campaign_seed: u64, run_index: u64) -> u64 {
    let mut z = campaign_seed
        ^ run_index
            .wrapping_add(1)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// An (n, fault-count) campaign cell.
pub type Cell = (usize, usize);

/// The feasible (n, r) cells of a config, in sweep order, plus the
/// skipped infeasible combinations.
pub fn campaign_cells(cfg: &CampaignConfig) -> (Vec<Cell>, Vec<Cell>) {
    let mut cells = Vec::new();
    let mut skipped = Vec::new();
    for &n in &cfg.sizes {
        for &r in &cfg.fault_counts {
            if r + 1 > n {
                skipped.push((n, r));
            } else {
                cells.push((n, r));
            }
        }
    }
    (cells, skipped)
}

/// Runs a campaign: the job pool, the ordered merge, and (when
/// `capture_dir` is set) the forensics capture pass. `progress` is called
/// from the coordinating thread with `(runs_done, runs_total)` while
/// workers execute — the hook the CLIs use for live output and the
/// mid-campaign Prometheus snapshot.
pub fn run_campaign(
    cfg: &CampaignConfig,
    progress: &mut dyn FnMut(usize, usize),
) -> Result<CampaignOutcome, String> {
    match cfg.key_type {
        KeyType::U32 => run_campaign_typed::<u32>(cfg, progress),
        KeyType::U64 => run_campaign_typed::<u64>(cfg, progress),
        KeyType::I64 => run_campaign_typed::<i64>(cfg, progress),
        KeyType::Pair => run_campaign_typed::<ftsort::seq::KeyPair>(cfg, progress),
    }
}

fn run_campaign_typed<K: GenKey>(
    cfg: &CampaignConfig,
    progress: &mut dyn FnMut(usize, usize),
) -> Result<CampaignOutcome, String> {
    if cfg.runs_per_cell == 0 {
        return Err("campaign needs at least one run per cell".into());
    }
    let (cells, skipped_cells) = campaign_cells(cfg);
    if cells.is_empty() {
        return Err("no feasible (n, fault-count) cell: every r exceeds n - 1".into());
    }
    let total = cells.len() * cfg.runs_per_cell;
    let metrics =
        hypercube::obs::metrics::global().map(|g| CampaignMetrics::register(&g.registry, &cells));

    // Job pool: workers claim global run indices from an atomic cursor
    // and park results in an index-addressed slot table. Nothing
    // order-sensitive happens here — the determinism-bearing pass is the
    // ordered merge below.
    let next = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<RunSummary, String>>>> =
        (0..total).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..cfg.jobs.max(1) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= total {
                    break;
                }
                let (n, r) = cells[i / cfg.runs_per_cell];
                let result = execute_run::<K>(cfg, n, r, i as u64);
                if let (Some(m), Ok(s)) = (&metrics, &result) {
                    m.on_run(n, r, s.makespan_us);
                }
                *slots[i].lock().unwrap() = Some(result);
                done.fetch_add(1, Ordering::Release);
            });
        }
        loop {
            let d = done.load(Ordering::Acquire);
            progress(d, total);
            if d >= total {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
    });

    // Deterministic merge: ascending run-index order, always.
    let mut acc = CampaignAccumulator::new(
        cfg.seed,
        cfg.runs_per_cell as u64,
        cfg.m_total as u64,
        cfg.link_model,
        cfg.key_type.as_str(),
    );
    let mut summaries = Vec::with_capacity(total);
    for (i, slot) in slots.into_iter().enumerate() {
        let (n, r) = cells[i / cfg.runs_per_cell];
        match slot
            .into_inner()
            .unwrap()
            .expect("worker filled every slot")
        {
            Ok(s) => {
                acc.record(&s);
                summaries.push(s);
            }
            Err(_) => acc.record_failure(n, r),
        }
    }
    let report = acc.finish();

    // Forensics capture pass: re-execute exactly the selected runs with a
    // streaming sink. Selection came from the deterministic report, and
    // each re-run re-derives its seed, so the bytes are jobs-independent.
    let mut captures = Vec::new();
    if let Some(dir) = &cfg.capture_dir {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("creating capture dir {}: {e}", dir.display()))?;
        for cell in &report.cells {
            for &idx in &cell.outlier_runs {
                captures.push(capture_run::<K>(cfg, cell.n, cell.r, idx, dir, "outlier")?);
            }
            if let Some(idx) = cell.median_run {
                captures.push(capture_run::<K>(cfg, cell.n, cell.r, idx, dir, "median")?);
            }
        }
    }

    Ok(CampaignOutcome {
        report,
        summaries,
        captures,
        skipped_cells,
    })
}

/// Draws and executes one campaign run, returning its summary.
fn execute_run<K: GenKey>(
    cfg: &CampaignConfig,
    n: usize,
    r: usize,
    run_index: u64,
) -> Result<RunSummary, String> {
    let seed = derive_run_seed(cfg.seed, run_index);
    let mut rng = StdRng::seed_from_u64(seed);
    let faults = random_faults(n, r, &mut rng);
    let plan = FtPlan::new(&faults).map_err(|e| e.to_string())?;
    let data: Vec<K> = random_keys_typed(cfg.m_total, &mut rng);
    let config = FtConfig {
        link_model: cfg.link_model,
        ..FtConfig::default()
    };
    let (outcome, phases, obs) = fault_tolerant_sort_observed(&plan, &config, data);
    let wait_total_us = obs.participants().map(|p| p.metrics.link_wait_us).sum();
    let inbox_peak = obs
        .participants()
        .map(|p| p.metrics.inbox_peak)
        .max()
        .unwrap_or(0);
    Ok(RunSummary {
        run_index,
        seed,
        n,
        r,
        makespan_us: outcome.time_us,
        step3_us: phases.step3_us,
        step7_us: phases.step7_us,
        step8_us: phases.step8_us,
        wait_total_us,
        comparisons: outcome.stats.comparisons,
        element_hops: outcome.stats.element_hops,
        inbox_peak,
        mincut: plan.partition().mincut,
        subcube_dim: plan.structure().s(),
        live: plan.live_count(),
    })
}

/// Re-executes run `run_index` with a streaming sink, capturing its gzip
/// v2 run file plus the live `RunReport` JSON (what `ftsort-cli replay
/// --metrics-out` must reproduce byte-for-byte) into `dir`.
fn capture_run<K: GenKey>(
    cfg: &CampaignConfig,
    n: usize,
    r: usize,
    run_index: u64,
    dir: &Path,
    role: &str,
) -> Result<PathBuf, String> {
    let seed = derive_run_seed(cfg.seed, run_index);
    let mut rng = StdRng::seed_from_u64(seed);
    let faults = random_faults(n, r, &mut rng);
    let plan = FtPlan::new(&faults).map_err(|e| e.to_string())?;
    let data: Vec<K> = random_keys_typed(cfg.m_total, &mut rng);
    let config = FtConfig {
        link_model: cfg.link_model,
        ..FtConfig::default()
    };
    let path = dir.join(format!("n{n}_r{r}_run{run_index}_{role}.jsonl.gz"));
    let mut sink = StreamingSink::create(&path)
        .map_err(|e| format!("creating run file {}: {e}", path.display()))?;
    sink.set_key_type(cfg.key_type.as_str());
    let sink: Arc<Mutex<dyn TraceSink>> = Arc::new(Mutex::new(sink));
    let (_outcome, _phases, obs) = fault_tolerant_sort_streamed(&plan, &config, data, sink);
    let report = obs.report(&phase_name).with_key_type(cfg.key_type.as_str());
    let report_path = dir.join(format!("n{n}_r{r}_run{run_index}_{role}.report.json"));
    std::fs::write(&report_path, report.to_json())
        .map_err(|e| format!("writing {}: {e}", report_path.display()))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_seeds_are_pure_and_decorrelated() {
        assert_eq!(derive_run_seed(1, 0), derive_run_seed(1, 0));
        assert_ne!(derive_run_seed(1, 0), derive_run_seed(1, 1));
        assert_ne!(derive_run_seed(1, 0), derive_run_seed(2, 0));
    }

    #[test]
    fn infeasible_cells_are_skipped() {
        let cfg = CampaignConfig {
            sizes: vec![3, 5],
            fault_counts: vec![2, 4],
            ..CampaignConfig::default()
        };
        let (cells, skipped) = campaign_cells(&cfg);
        assert_eq!(cells, vec![(3, 2), (5, 2), (5, 4)]);
        assert_eq!(skipped, vec![(3, 4)]);
    }

    #[test]
    fn small_campaign_aggregates_match_brute_force() {
        let cfg = CampaignConfig {
            sizes: vec![4],
            fault_counts: vec![2],
            runs_per_cell: 6,
            m_total: 256,
            seed: 11,
            jobs: 2,
            ..CampaignConfig::default()
        };
        let outcome = run_campaign(&cfg, &mut |_, _| {}).expect("campaign");
        assert_eq!(outcome.summaries.len(), 6);
        let cell = &outcome.report.cells[0];
        assert_eq!(cell.runs, 6);
        let sum: f64 = outcome.summaries.iter().fold(0.0, |a, s| a + s.makespan_us);
        let agg = cell.metric("makespan_us").unwrap();
        assert_eq!(agg.sum.to_bits(), sum.to_bits());
        assert!(!cell.outlier_runs.is_empty());
    }
}
