//! Phase breakdown report: where the fault-tolerant sort's simulated time
//! goes (step 3 / step 7 / step 8 / optional host I/O) across fault counts —
//! the cost-structure view behind the paper's §3 analysis.
//!
//! ```text
//! cargo run -p ft-bench --release --bin breakdown \
//!     [-- --n 6 --m 100000 --seed 1992 --host-io --engine seq --key-type i64 --threads 4 --trace-out t.json --metrics-out m.json]
//! ```

use ft_bench::{parse_engine, random_faults, random_keys_typed, GenKey, ObsFlags, DEFAULT_SEED};
use ftsort::ftsort::{fault_tolerant_sort_observed, FtConfig, FtPlan};
use ftsort::seq::{KeyPair, KeyType};
use hypercube::sim::EngineKind;

fn main() {
    let mut n = 6usize;
    let mut m_total = 100_000usize;
    let mut seed = DEFAULT_SEED;
    let mut host_io = false;
    let mut engine = EngineKind::default();
    let mut key_type = KeyType::default();
    let mut obs_flags = ObsFlags::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--n" => n = args.next().and_then(|v| v.parse().ok()).unwrap_or(n),
            "--m" => m_total = args.next().and_then(|v| v.parse().ok()).unwrap_or(m_total),
            "--seed" => seed = args.next().and_then(|v| v.parse().ok()).unwrap_or(seed),
            "--host-io" => host_io = true,
            "--engine" => engine = parse_engine(args.next()),
            "--key-type" => key_type = ft_bench::parse_key_type(args.next()),
            other => {
                if !obs_flags.parse(other, &mut args) {
                    eprintln!("unknown argument {other}");
                    std::process::exit(2);
                }
            }
        }
    }
    match key_type {
        KeyType::U32 => run::<u32>(n, m_total, seed, host_io, engine, key_type, obs_flags),
        KeyType::U64 => run::<u64>(n, m_total, seed, host_io, engine, key_type, obs_flags),
        KeyType::I64 => run::<i64>(n, m_total, seed, host_io, engine, key_type, obs_flags),
        KeyType::Pair => run::<KeyPair>(n, m_total, seed, host_io, engine, key_type, obs_flags),
    }
}

fn run<K: GenKey>(
    n: usize,
    m_total: usize,
    seed: u64,
    host_io: bool,
    engine: EngineKind,
    key_type: KeyType,
    mut obs_flags: ObsFlags,
) {
    let mut rng = ft_bench::rng(seed);
    println!(
        "Phase breakdown on Q{n}, M = {m_total}, host I/O {}; seed = {seed}, keys = {key_type}",
        if host_io { "charged" } else { "free" }
    );
    println!("(per-phase maxima over processors, simulated ms)\n");
    println!(
        "{:>2} {:>3} {:>4} | {:>9} {:>9} {:>9} {:>9} {:>9} | {:>9}",
        "r", "m", "N'", "scatter", "step3", "step7", "step8", "gather", "total"
    );
    println!("{}", "-".repeat(86));
    for r in 0..n {
        let faults = random_faults(n, r, &mut rng);
        let plan = FtPlan::new(&faults).expect("tolerable");
        let data: Vec<K> = random_keys_typed(m_total, &mut rng);
        let config = FtConfig {
            include_host_io: host_io,
            engine,
            tracing: obs_flags.tracing(),
            threads: obs_flags.threads,
            ..FtConfig::default()
        };
        let sched_data = obs_flags.sched_enabled().then(|| data.clone());
        let (out, phases, obs) = fault_tolerant_sort_observed(&plan, &config, data);
        if obs_flags.enabled() {
            obs_flags.observe(obs);
        }
        if let Some(sched_data) = sched_data {
            obs_flags.profile_sched(&plan, &config, sched_data);
        }
        println!(
            "{:>2} {:>3} {:>4} | {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>9.1} | {:>9.1}",
            r,
            plan.partition().mincut,
            plan.live_count(),
            phases.host_scatter_us / 1000.0,
            phases.step3_us / 1000.0,
            phases.step7_us / 1000.0,
            phases.step8_us / 1000.0,
            phases.host_gather_us / 1000.0,
            out.time_us / 1000.0
        );
    }
    obs_flags.write();
}
