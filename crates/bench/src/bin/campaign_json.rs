//! Emits a machine-readable Monte-Carlo campaign report
//! (`BENCH_campaign.json`) — the fleet-scale companion of
//! `engines_json`/`sched_json`, and the producer of the
//! `results/BENCH_campaign_ci.json` baseline `bench_diff` gates.
//!
//! ```text
//! campaign_json [--sizes 5] [--fault-counts 3] [--runs 64] [--m 2000]
//!               [--seed 1992] [--jobs N] [--key-type i64]
//!               [--link-model uncontended] [--capture-dir DIR]
//!               --out BENCH_campaign.json
//! ```
//!
//! The output *is* the versioned
//! [`CampaignReport`](hypercube::obs::campaign::CampaignReport) JSON:
//! every quantity in it is virtual (simulated clocks, operation counts,
//! partition shapes), so the file is byte-identical across hosts, worker
//! counts and invocations for a given seed + matrix — which is what lets
//! `bench_diff` gate the p50/p99 makespan and wait-total bands exactly.
//! Regenerate the baseline with the flags CI uses (see
//! `.github/workflows/ci.yml`):
//!
//! ```text
//! campaign_json --sizes 5 --fault-counts 3 --runs 64 --m 2000 --seed 1 \
//!               --out results/BENCH_campaign_ci.json
//! ```

use ft_bench::campaign::{run_campaign, CampaignConfig};
use ft_bench::{parse_key_type, DEFAULT_SEED};
use std::path::PathBuf;

struct Cfg {
    campaign: CampaignConfig,
    out: String,
}

fn parse_args() -> Cfg {
    let mut campaign = CampaignConfig {
        sizes: vec![5],
        fault_counts: vec![3],
        runs_per_cell: 64,
        m_total: 2000,
        seed: DEFAULT_SEED,
        ..CampaignConfig::default()
    };
    let mut out = String::from("BENCH_campaign.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--sizes" => campaign.sizes = parse_list(args.next(), "--sizes"),
            "--fault-counts" => campaign.fault_counts = parse_list(args.next(), "--fault-counts"),
            "--runs" => campaign.runs_per_cell = parse_num(args.next(), "--runs"),
            "--m" => campaign.m_total = parse_num(args.next(), "--m"),
            "--seed" => campaign.seed = parse_num(args.next(), "--seed"),
            "--jobs" => campaign.jobs = parse_num(args.next(), "--jobs"),
            "--key-type" => campaign.key_type = parse_key_type(args.next()),
            "--link-model" => {
                let v = args.next().unwrap_or_default();
                campaign.link_model = match hypercube::sim::LinkModel::parse(&v) {
                    Some(lm) => lm,
                    None => {
                        eprintln!("unknown link model '{v}' (uncontended|contended)");
                        std::process::exit(2);
                    }
                };
            }
            "--capture-dir" => {
                campaign.capture_dir = Some(PathBuf::from(args.next().unwrap_or_else(|| {
                    eprintln!("--capture-dir requires a value");
                    std::process::exit(2);
                })))
            }
            "--out" => {
                out = args.next().unwrap_or_else(|| {
                    eprintln!("--out requires a value");
                    std::process::exit(2);
                })
            }
            other => {
                eprintln!(
                    "unknown flag {other} (known: --sizes --fault-counts --runs --m --seed \
                     --jobs --key-type --link-model --capture-dir --out)"
                );
                std::process::exit(2);
            }
        }
    }
    if campaign.runs_per_cell == 0 || campaign.jobs == 0 {
        eprintln!("--runs and --jobs must be at least 1");
        std::process::exit(2);
    }
    Cfg { campaign, out }
}

fn parse_num<T: std::str::FromStr>(value: Option<String>, flag: &str) -> T {
    match value.as_deref().map(str::parse) {
        Some(Ok(v)) => v,
        _ => {
            eprintln!("{flag} requires a numeric value");
            std::process::exit(2);
        }
    }
}

fn parse_list(value: Option<String>, flag: &str) -> Vec<usize> {
    let Some(v) = value else {
        eprintln!("{flag} requires a comma-separated list");
        std::process::exit(2);
    };
    v.split(',')
        .map(|s| match s.trim().parse() {
            Ok(n) => n,
            Err(_) => {
                eprintln!("{flag}: bad entry '{s}'");
                std::process::exit(2);
            }
        })
        .collect()
}

fn main() {
    let cfg = parse_args();
    let outcome = match run_campaign(&cfg.campaign, &mut |_, _| {}) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    for (n, r) in &outcome.skipped_cells {
        eprintln!("skipped cell n={n} r={r}: r > n - 1");
    }
    print!("{}", outcome.report.tables());
    if let Err(e) = std::fs::write(&cfg.out, outcome.report.to_json()) {
        eprintln!("error: writing {}: {e}", cfg.out);
        std::process::exit(1);
    }
    println!("campaign report written: {}", cfg.out);
}
