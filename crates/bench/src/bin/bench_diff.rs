//! Per-phase regression localization between two `BENCH_engines.json`
//! files (written by the `engines_json` binary).
//!
//! Rows are matched by `(n, r, m)`. For each matched row, every phase's
//! virtual time in B is compared against A, and any phase that regressed
//! by more than the tolerance (default 10%) is flagged; the overall
//! `virtual_us` makespan gets the same treatment. Wall-clock columns are
//! printed for context but never flagged — they measure the host, not the
//! algorithm, so CI noise would make them useless as a gate.
//!
//! Exits 0 when no phase regressed, 1 when at least one did, 2 on usage
//! or parse errors — so it can gate CI:
//!
//! ```text
//! cargo run -p ft-bench --release --bin bench_diff -- \
//!     --a BENCH_engines.json --b /tmp/new.json [--tolerance 10]
//! ```

use hypercube::obs::json::Json;

/// One `results[]` row, keyed by `(n, r, m)`.
struct Row {
    n: u64,
    r: u64,
    m: u64,
    virtual_us: f64,
    walls: Vec<(String, f64)>,
    phases: Vec<(String, f64)>,
}

fn main() {
    let mut a_path = None;
    let mut b_path = None;
    let mut tolerance = 10.0f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--a" => a_path = args.next(),
            "--b" => b_path = args.next(),
            "--tolerance" => match args.next().and_then(|v| v.parse().ok()) {
                Some(t) => tolerance = t,
                None => usage("--tolerance needs a percentage, e.g. 10"),
            },
            other => usage(&format!("unknown argument {other}")),
        }
    }
    let (Some(a_path), Some(b_path)) = (a_path, b_path) else {
        usage("bench_diff needs --a OLD.json --b NEW.json");
    };
    let a = load(&a_path);
    let b = load(&b_path);

    println!("bench_diff: {a_path} (A) vs {b_path} (B), tolerance {tolerance}%\n");
    let mut regressions = 0usize;
    let mut matched = 0usize;
    for rb in &b {
        let Some(ra) = a.iter().find(|r| (r.n, r.r, r.m) == (rb.n, rb.r, rb.m)) else {
            println!(
                "n={} r={} m={}: only in B (no baseline row)",
                rb.n, rb.r, rb.m
            );
            continue;
        };
        matched += 1;
        println!("n={} r={} m={}:", rb.n, rb.r, rb.m);
        regressions += diff_metric("virtual_us", ra.virtual_us, rb.virtual_us, tolerance);
        for (name, old) in &ra.phases {
            match rb.phases.iter().find(|(k, _)| k == name) {
                Some((_, new)) => {
                    regressions += diff_metric(&format!("phase {name}"), *old, *new, tolerance)
                }
                None => println!("  phase {name:<28} dropped in B"),
            }
        }
        for (name, old) in &ra.walls {
            if let Some((_, new)) = rb.walls.iter().find(|(k, _)| k == name) {
                let pct = if *old > 0.0 {
                    (new - old) / old * 100.0
                } else {
                    0.0
                };
                println!(
                    "  {name:<34} {old:>12.4} s -> {new:>12.4} s  {pct:>+7.1}%  (informational)"
                );
            }
        }
    }
    for ra in &a {
        if !b.iter().any(|r| (r.n, r.r, r.m) == (ra.n, ra.r, ra.m)) {
            println!(
                "n={} r={} m={}: only in A (row dropped in B)",
                ra.n, ra.r, ra.m
            );
        }
    }
    if matched == 0 {
        eprintln!("\nno rows matched between the two files");
        std::process::exit(2);
    }
    if regressions > 0 {
        println!("\nFAIL: {regressions} phase metric(s) regressed by more than {tolerance}%");
        std::process::exit(1);
    }
    println!("\nOK: no phase regressed by more than {tolerance}% across {matched} matched row(s)");
}

/// Prints one virtual-time metric comparison; returns 1 if it regressed
/// past the tolerance, 0 otherwise.
fn diff_metric(name: &str, old: f64, new: f64, tolerance: f64) -> usize {
    let pct = if old > 0.0 {
        (new - old) / old * 100.0
    } else {
        0.0
    };
    let flag = pct > tolerance;
    println!(
        "  {:<34} {:>12.1} us -> {:>12.1} us  {:>+7.1}%{}",
        name,
        old,
        new,
        pct,
        if flag { "  REGRESSION" } else { "" }
    );
    flag as usize
}

fn usage(msg: &str) -> ! {
    eprintln!("{msg}");
    eprintln!("usage: bench_diff --a OLD.json --b NEW.json [--tolerance PCT]");
    std::process::exit(2);
}

fn load(path: &str) -> Vec<Row> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("reading {path}: {e}");
        std::process::exit(2);
    });
    parse_rows(&text).unwrap_or_else(|e| {
        eprintln!("{path}: {e}");
        std::process::exit(2);
    })
}

/// Pulls the `results[]` rows out of a `BENCH_engines.json` document.
/// Tolerates both the current schema (`*_wall_s` columns) and the older
/// two-engine one, so a new binary can diff against an old baseline.
fn parse_rows(text: &str) -> Result<Vec<Row>, String> {
    let doc = Json::parse(text)?;
    let Some(Json::Arr(results)) = doc.get("results") else {
        return Err("missing 'results' array — not a BENCH_engines.json file?".into());
    };
    let mut rows = Vec::new();
    for (i, row) in results.iter().enumerate() {
        let int = |k: &str| -> Result<u64, String> {
            row.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("results[{i}]: missing integer '{k}'"))
        };
        let virtual_us = row
            .get("virtual_us")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("results[{i}]: missing 'virtual_us'"))?;
        let mut walls = Vec::new();
        if let Json::Obj(fields) = row {
            for (k, v) in fields {
                if k.ends_with("_wall_s") {
                    if let Some(v) = v.as_f64() {
                        walls.push((k.clone(), v));
                    }
                }
            }
        }
        let mut phases = Vec::new();
        if let Some(Json::Obj(fields)) = row.get("phases") {
            for (k, v) in fields {
                let v = v
                    .as_f64()
                    .ok_or_else(|| format!("results[{i}]: phase '{k}' is not a number"))?;
                phases.push((k.clone(), v));
            }
        }
        rows.push(Row {
            n: int("n")?,
            r: int("r")?,
            m: int("m")?,
            virtual_us,
            walls,
            phases,
        });
    }
    Ok(rows)
}
