//! Per-phase regression localization between two `BENCH_engines.json`
//! files (written by the `engines_json` binary) — or two
//! `BENCH_sched.json` files (written by `sched_json`), which share the
//! row key and host-matching discipline — or two campaign reports
//! (written by `campaign_json` / `ftsort-campaign`), whose per-cell
//! aggregates map onto the same machinery: each cell becomes a row keyed
//! `(n, r, m, 0, link_model)` whose mean makespan gates as `virtual_us`,
//! mean wait as `wait_total_us`, and whose interpolated
//! p50/p99 makespan and wait-total estimates gate as four extra
//! virtual-time metrics at `--tolerance` (campaign quantities are all
//! deterministic virtual numbers, so the bands are exact). A campaign
//! cell's `runs_failed` surfaces through the `events_dropped` WARNING
//! path: dropped runs mean the aggregates under-count.
//!
//! Rows are matched by `(n, r, m, workers, link_model)` (`workers`
//! defaults to 0 and `link_model` to `uncontended` for older baselines).
//! For each matched row, every phase's virtual time in B is compared
//! against A, and any phase that regressed by more than the tolerance
//! (default 10%) is flagged; the overall `virtual_us` makespan and the
//! `wait_total_us` link-queueing total (contended rows) get the same
//! treatment — both are deterministic virtual quantities (sched rows
//! carry none of these and skip them).
//!
//! Scheduler-health metrics gate like the wall ratios — banded by
//! `--wall-tolerance` plus an absolute epsilon of 0.02 (the metrics are
//! fractions in `[0, 1]`; a pure relative band would make near-zero
//! baselines impossibly strict), and only when both files report the
//! same `host_cores`:
//!
//! - **utilization** must not fall below `old × band − 0.02`;
//! - **barrier_share** must not rise above `old × (2 − band) + 0.02`;
//! - **steal_rate** is printed but never gated — steal volume is load
//!   placement, not health; it legitimately swings with core count and
//!   shard geometry;
//! - **events_dropped** in any B row prints a loud `WARNING` (truncated
//!   telemetry) but never fails the diff — ring capacity is a tuning
//!   knob, not an algorithmic regression.
//!
//! Wall-clock *columns* are printed for context but never flagged — they
//! measure the host, not the algorithm, so CI noise would make them
//! useless as a gate. Wall-clock *ratios* are a different story: the
//! `par_over_seq` speedup is dimensionless (par and seq ran on the same
//! host seconds apart), so it diffs meaningfully across runs. Two gates
//! use it, both banded by `--wall-tolerance` (default 25%):
//!
//! 1. **ratio regression** — B's `par_over_seq` must not fall below A's
//!    by more than the band, per matched row (only checked when both
//!    files report the same `host_cores`; a host change invalidates the
//!    baseline ratio and is reported as a skip, not a failure). Rows
//!    whose seq wall clock is below `--min-ratio-wall` seconds (default
//!    0.05) in either file are reported but not gated — at sub-millisecond
//!    run times the ratio is dominated by scheduler start-up noise and
//!    would make the gate flaky;
//! 2. **crossover** — every B row with `n ≥ 10` and `workers ≥ 2` must
//!    have `par_over_seq ≥ 1 − band` when B ran on a multi-core host
//!    (`host_cores ≥ 2`). On a single-core host the parallel engine
//!    cannot beat the sequential one and the gate is skipped with a
//!    note.
//!
//! The `kernel` section (when both files carry one) gates the same way:
//! each key type's `branchless_over_scalar` and `blocked_over_scalar`
//! speedups are dimensionless same-host ratios, and B's must not fall
//! below A's by more than the wall band. A fabricated kernel slowdown —
//! e.g. editing a baseline's `branchless_s` down — therefore fails the
//! diff, which is exactly what CI's negative self-test does.
//!
//! Exits 0 when nothing regressed, 1 when at least one gate fired, 2 on
//! usage or parse errors — so it can gate CI:
//!
//! ```text
//! cargo run -p ft-bench --release --bin bench_diff -- \
//!     --a BENCH_engines.json --b /tmp/new.json \
//!     [--tolerance 10] [--wall-tolerance 25] [--min-ratio-wall 0.05]
//! ```

use hypercube::obs::json::Json;

/// One `results[]` row, keyed by `(n, r, m, workers, link_model)`.
struct Row {
    n: u64,
    r: u64,
    m: u64,
    /// Par-engine worker count; 0 for pre-multi-core baselines.
    workers: u64,
    /// Link pricing model; `"uncontended"` for pre-contention baselines.
    link_model: String,
    /// Virtual makespan; absent on sched rows.
    virtual_us: Option<f64>,
    /// Total link-queueing wait (µs); absent on sched and old rows.
    wait_total_us: Option<f64>,
    /// `speedups.par_over_seq` when present.
    par_over_seq: Option<f64>,
    /// Scheduler-health fractions (`sched_json` rows): utilization,
    /// steal_rate, barrier_share.
    utilization: Option<f64>,
    steal_rate: Option<f64>,
    barrier_share: Option<f64>,
    /// Profiler ring drops (`sched_json` rows) or failed campaign runs
    /// (campaign cells): nonzero means the row's telemetry under-counts.
    events_dropped: Option<u64>,
    /// True when the row came from a campaign report cell (tailors the
    /// `events_dropped` warning).
    campaign: bool,
    /// Campaign quantile estimates (µs): interpolated p50/p99 of the
    /// cell's makespan and wait-total histograms.
    p50_makespan_us: Option<f64>,
    p99_makespan_us: Option<f64>,
    p50_wait_total_us: Option<f64>,
    p99_wait_total_us: Option<f64>,
    walls: Vec<(String, f64)>,
    phases: Vec<(String, f64)>,
}

/// One `kernel.rows[]` entry: merge-kernel wall clocks and speedups for
/// one key type.
struct KernelRow {
    key_type: String,
    scalar_s: f64,
    branchless_s: f64,
    blocked_s: f64,
    branchless_over_scalar: f64,
    blocked_over_scalar: f64,
}

/// A parsed `BENCH_engines.json`: the rows plus the host the walls were
/// measured on.
struct Bench {
    host_cores: u64,
    /// Workload key type (`key_type` top-level); absent on old files.
    key_type: Option<String>,
    rows: Vec<Row>,
    /// Merge-kernel section; empty on files that predate it.
    kernels: Vec<KernelRow>,
}

fn main() {
    let mut a_path = None;
    let mut b_path = None;
    let mut tolerance = 10.0f64;
    let mut wall_tolerance = 25.0f64;
    let mut min_ratio_wall = 0.05f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--a" => a_path = args.next(),
            "--b" => b_path = args.next(),
            "--tolerance" => match args.next().and_then(|v| v.parse().ok()) {
                Some(t) => tolerance = t,
                None => usage("--tolerance needs a percentage, e.g. 10"),
            },
            "--wall-tolerance" => match args.next().and_then(|v| v.parse().ok()) {
                Some(t) => wall_tolerance = t,
                None => usage("--wall-tolerance needs a percentage, e.g. 25"),
            },
            "--min-ratio-wall" => match args.next().and_then(|v| v.parse().ok()) {
                Some(t) => min_ratio_wall = t,
                None => usage("--min-ratio-wall needs seconds, e.g. 0.05"),
            },
            other => usage(&format!("unknown argument {other}")),
        }
    }
    let (Some(a_path), Some(b_path)) = (a_path, b_path) else {
        usage("bench_diff needs --a OLD.json --b NEW.json");
    };
    let a = load(&a_path);
    let b = load(&b_path);

    println!(
        "bench_diff: {a_path} (A, {} cores) vs {b_path} (B, {} cores), \
         tolerance {tolerance}%, wall tolerance {wall_tolerance}%, \
         min ratio wall {min_ratio_wall}s\n",
        a.host_cores, b.host_cores
    );
    let same_host = a.host_cores == b.host_cores;
    if !same_host {
        println!(
            "note: host_cores differ ({} vs {}) — par_over_seq ratio regressions not gated\n",
            a.host_cores, b.host_cores
        );
    }
    if let (Some(ka), Some(kb)) = (&a.key_type, &b.key_type) {
        if ka != kb {
            println!(
                "note: key_type differs ({ka} vs {kb}) — virtual-time comparisons span \
                 different workloads; regenerate one side with a matching --key-type\n"
            );
        }
    }
    let wall_band = 1.0 - wall_tolerance / 100.0;
    let mut regressions = 0usize;
    let mut matched = 0usize;
    for rb in &b.rows {
        let key = |r: &Row| (r.n, r.r, r.m, r.workers, r.link_model.clone());
        let Some(ra) = a.rows.iter().find(|r| key(r) == key(rb)) else {
            println!(
                "n={} r={} m={} workers={} link={}: only in B (no baseline row)",
                rb.n, rb.r, rb.m, rb.workers, rb.link_model
            );
            continue;
        };
        matched += 1;
        println!(
            "n={} r={} m={} workers={} link={}:",
            rb.n, rb.r, rb.m, rb.workers, rb.link_model
        );
        if let (Some(old), Some(new)) = (ra.virtual_us, rb.virtual_us) {
            regressions += diff_metric("virtual_us", old, new, tolerance);
        }
        if let (Some(old), Some(new)) = (ra.wait_total_us, rb.wait_total_us) {
            regressions += diff_metric("wait_total_us", old, new, tolerance);
        }
        // Campaign quantile bands: interpolated p50/p99 estimates are
        // deterministic virtual quantities, gated like any virtual time.
        for (name, old, new) in [
            ("p50_makespan_us", ra.p50_makespan_us, rb.p50_makespan_us),
            ("p99_makespan_us", ra.p99_makespan_us, rb.p99_makespan_us),
            (
                "p50_wait_total_us",
                ra.p50_wait_total_us,
                rb.p50_wait_total_us,
            ),
            (
                "p99_wait_total_us",
                ra.p99_wait_total_us,
                rb.p99_wait_total_us,
            ),
        ] {
            if let (Some(old), Some(new)) = (old, new) {
                regressions += diff_metric(name, old, new, tolerance);
            }
        }
        for (name, old) in &ra.phases {
            match rb.phases.iter().find(|(k, _)| k == name) {
                Some((_, new)) => {
                    regressions += diff_metric(&format!("phase {name}"), *old, *new, tolerance)
                }
                None => println!("  phase {name:<28} dropped in B"),
            }
        }
        if let (Some(old), Some(new)) = (ra.par_over_seq, rb.par_over_seq) {
            let seq_wall = |r: &Row| {
                r.walls
                    .iter()
                    .find(|(k, _)| k == "seq_wall_s")
                    .map_or(0.0, |(_, v)| *v)
            };
            let measurable = seq_wall(ra) >= min_ratio_wall && seq_wall(rb) >= min_ratio_wall;
            let floor = old * wall_band;
            let flag = same_host && measurable && new < floor;
            println!(
                "  {:<34} {:>12.2} x -> {:>12.2} x  (floor {:.2}x){}",
                "par_over_seq",
                old,
                new,
                floor,
                if flag {
                    "  REGRESSION"
                } else if !same_host {
                    "  (informational: host changed)"
                } else if !measurable {
                    "  (informational: walls below min-ratio-wall)"
                } else {
                    ""
                }
            );
            regressions += flag as usize;
        }
        // Scheduler-health gates (sched_json rows). Fractions in [0, 1]:
        // banded relatively like the wall ratios, plus an absolute 0.02
        // epsilon so near-zero baselines don't gate on noise. Host-matched
        // only — utilization measures this machine's scheduler.
        if let (Some(old), Some(new)) = (ra.utilization, rb.utilization) {
            let floor = old * wall_band - 0.02;
            let flag = same_host && new < floor;
            println!(
                "  {:<34} {:>12.3}   -> {:>12.3}    (floor {:.3}){}",
                "utilization",
                old,
                new,
                floor,
                if flag {
                    "  REGRESSION"
                } else if !same_host {
                    "  (informational: host changed)"
                } else {
                    ""
                }
            );
            regressions += flag as usize;
        }
        if let (Some(old), Some(new)) = (ra.barrier_share, rb.barrier_share) {
            let ceiling = old * (2.0 - wall_band) + 0.02;
            let flag = same_host && new > ceiling;
            println!(
                "  {:<34} {:>12.3}   -> {:>12.3}    (ceiling {:.3}){}",
                "barrier_share",
                old,
                new,
                ceiling,
                if flag {
                    "  REGRESSION"
                } else if !same_host {
                    "  (informational: host changed)"
                } else {
                    ""
                }
            );
            regressions += flag as usize;
        }
        if let (Some(old), Some(new)) = (ra.steal_rate, rb.steal_rate) {
            println!(
                "  {:<34} {:>12.3}   -> {:>12.3}    (informational)",
                "steal_rate", old, new
            );
        }
        for (name, old) in &ra.walls {
            if let Some((_, new)) = rb.walls.iter().find(|(k, _)| k == name) {
                let pct = if *old > 0.0 {
                    (new - old) / old * 100.0
                } else {
                    0.0
                };
                println!(
                    "  {name:<34} {old:>12.4} s -> {new:>12.4} s  {pct:>+7.1}%  (informational)"
                );
            }
        }
    }
    for ra in &a.rows {
        if !b.rows.iter().any(|r| {
            (r.n, r.r, r.m, r.workers, &r.link_model)
                == (ra.n, ra.r, ra.m, ra.workers, &ra.link_model)
        }) {
            println!(
                "n={} r={} m={} workers={} link={}: only in A (row dropped in B)",
                ra.n, ra.r, ra.m, ra.workers, ra.link_model
            );
        }
    }
    if matched == 0 {
        eprintln!("\nno rows matched between the two files");
        std::process::exit(2);
    }

    // Profiler ring health: dropped events mean B's scheduler telemetry
    // is truncated and its health fractions under-count. Loud, but never
    // a failure — ring capacity is a tuning knob, not a perf regression.
    for rb in &b.rows {
        if let Some(dropped) = rb.events_dropped.filter(|&d| d > 0) {
            if rb.campaign {
                println!(
                    "WARNING: n={} r={} m={}: campaign dropped {dropped} run(s) — cell \
                     aggregates under-count (runs failed to plan/execute)",
                    rb.n, rb.r, rb.m
                );
            } else {
                println!(
                    "WARNING: n={} r={} m={} workers={}: profiler dropped {dropped} event(s) — \
                     sched telemetry truncated (raise the profiler ring capacity)",
                    rb.n, rb.r, rb.m, rb.workers
                );
            }
        }
    }

    // Kernel gate: merge-kernel speedups are dimensionless same-host
    // ratios (scalar and branchless ran seconds apart on this machine),
    // so they diff like par_over_seq — B must stay within the wall band
    // of A, per key type and per kernel. Raw seconds print for context.
    if !a.kernels.is_empty() && !b.kernels.is_empty() {
        println!("\nkernel (merge, per key type):");
        for kb in &b.kernels {
            let Some(ka) = a.kernels.iter().find(|k| k.key_type == kb.key_type) else {
                println!("  {}: only in B (no baseline kernel row)", kb.key_type);
                continue;
            };
            for (name, old, new) in [
                (
                    "branchless_over_scalar",
                    ka.branchless_over_scalar,
                    kb.branchless_over_scalar,
                ),
                (
                    "blocked_over_scalar",
                    ka.blocked_over_scalar,
                    kb.blocked_over_scalar,
                ),
            ] {
                let floor = old * wall_band;
                let flag = same_host && new < floor;
                println!(
                    "  {:<34} {:>12.2} x -> {:>12.2} x  (floor {:.2}x){}",
                    format!("{} {name}", kb.key_type),
                    old,
                    new,
                    floor,
                    if flag {
                        "  REGRESSION"
                    } else if !same_host {
                        "  (informational: host changed)"
                    } else {
                        ""
                    }
                );
                regressions += flag as usize;
            }
            for (name, old, new) in [
                ("scalar_s", ka.scalar_s, kb.scalar_s),
                ("branchless_s", ka.branchless_s, kb.branchless_s),
                ("blocked_s", ka.blocked_s, kb.blocked_s),
            ] {
                let pct = if old > 0.0 {
                    (new - old) / old * 100.0
                } else {
                    0.0
                };
                println!(
                    "  {:<34} {:>12.6} s -> {:>12.6} s  {:>+7.1}%  (informational)",
                    format!("{} {name}", kb.key_type),
                    old,
                    new,
                    pct
                );
            }
        }
    } else if !b.kernels.is_empty() {
        println!("\nnote: baseline has no kernel section — kernel speedups not gated");
    }

    // Crossover gate: on a multi-core host the work-stealing engine must
    // beat (or at worst tie, within the band) the sequential engine on
    // big instances with real parallelism available.
    if b.host_cores >= 2 {
        for rb in &b.rows {
            if rb.n >= 10 && rb.workers >= 2 {
                let Some(ratio) = rb.par_over_seq else {
                    continue;
                };
                if ratio < wall_band {
                    println!(
                        "crossover FAIL: n={} workers={} par_over_seq {:.2}x < {:.2}x \
                         (par must beat seq on {} cores)",
                        rb.n, rb.workers, ratio, wall_band, b.host_cores
                    );
                    regressions += 1;
                } else {
                    println!(
                        "crossover ok: n={} workers={} par_over_seq {:.2}x >= {:.2}x",
                        rb.n, rb.workers, ratio, wall_band
                    );
                }
            }
        }
    } else {
        println!("note: B ran on a single-core host — par-beats-seq crossover gate skipped");
    }

    if regressions > 0 {
        println!("\nFAIL: {regressions} metric(s) regressed past their tolerance");
        std::process::exit(1);
    }
    println!("\nOK: no metric regressed past its tolerance across {matched} matched row(s)");
}

/// Prints one virtual-time metric comparison; returns 1 if it regressed
/// past the tolerance, 0 otherwise.
fn diff_metric(name: &str, old: f64, new: f64, tolerance: f64) -> usize {
    let pct = if old > 0.0 {
        (new - old) / old * 100.0
    } else {
        0.0
    };
    let flag = pct > tolerance;
    println!(
        "  {:<34} {:>12.1} us -> {:>12.1} us  {:>+7.1}%{}",
        name,
        old,
        new,
        pct,
        if flag { "  REGRESSION" } else { "" }
    );
    flag as usize
}

fn usage(msg: &str) -> ! {
    eprintln!("{msg}");
    eprintln!(
        "usage: bench_diff --a OLD.json --b NEW.json \
         [--tolerance PCT] [--wall-tolerance PCT] [--min-ratio-wall SECS]"
    );
    std::process::exit(2);
}

fn load(path: &str) -> Bench {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("reading {path}: {e}");
        std::process::exit(2);
    });
    parse_bench(&text).unwrap_or_else(|e| {
        eprintln!("{path}: {e}");
        std::process::exit(2);
    })
}

/// Pulls the `results[]` rows out of a `BENCH_engines.json` document.
/// Tolerates the current multi-core schema (`workers` per row,
/// `host_cores` top-level) and the older single-row-per-n ones, so a new
/// binary can diff against an old baseline.
fn parse_bench(text: &str) -> Result<Bench, String> {
    let doc = Json::parse(text)?;
    if doc.get("cells").is_some() {
        return parse_campaign(&doc);
    }
    let host_cores = doc.get("host_cores").and_then(Json::as_u64).unwrap_or(1);
    let key_type = doc
        .get("key_type")
        .and_then(Json::as_str)
        .map(str::to_string);
    let mut kernels = Vec::new();
    if let Some(Json::Arr(rows)) = doc.get("kernel").and_then(|k| k.get("rows")) {
        for (i, row) in rows.iter().enumerate() {
            let num = |k: &str| -> Result<f64, String> {
                row.get(k)
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("kernel.rows[{i}]: missing number '{k}'"))
            };
            let speedup = |k: &str| -> Result<f64, String> {
                row.get("speedups")
                    .and_then(|s| s.get(k))
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("kernel.rows[{i}]: missing speedup '{k}'"))
            };
            kernels.push(KernelRow {
                key_type: row
                    .get("key_type")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("kernel.rows[{i}]: missing 'key_type'"))?
                    .to_string(),
                scalar_s: num("scalar_s")?,
                branchless_s: num("branchless_s")?,
                blocked_s: num("blocked_s")?,
                branchless_over_scalar: speedup("branchless_over_scalar")?,
                blocked_over_scalar: speedup("blocked_over_scalar")?,
            });
        }
    }
    let Some(Json::Arr(results)) = doc.get("results") else {
        return Err("missing 'results' array — not a BENCH_engines.json file?".into());
    };
    let mut rows = Vec::new();
    for (i, row) in results.iter().enumerate() {
        let int = |k: &str| -> Result<u64, String> {
            row.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("results[{i}]: missing integer '{k}'"))
        };
        let virtual_us = row.get("virtual_us").and_then(Json::as_f64);
        let par_over_seq = row
            .get("speedups")
            .and_then(|s| s.get("par_over_seq"))
            .and_then(Json::as_f64);
        let mut walls = Vec::new();
        if let Json::Obj(fields) = row {
            for (k, v) in fields {
                if k.ends_with("_wall_s") {
                    if let Some(v) = v.as_f64() {
                        walls.push((k.clone(), v));
                    }
                }
            }
        }
        let mut phases = Vec::new();
        if let Some(Json::Obj(fields)) = row.get("phases") {
            for (k, v) in fields {
                let v = v
                    .as_f64()
                    .ok_or_else(|| format!("results[{i}]: phase '{k}' is not a number"))?;
                phases.push((k.clone(), v));
            }
        }
        rows.push(Row {
            n: int("n")?,
            r: int("r")?,
            m: int("m")?,
            workers: row.get("workers").and_then(Json::as_u64).unwrap_or(0),
            link_model: row
                .get("link_model")
                .and_then(Json::as_str)
                .unwrap_or("uncontended")
                .to_string(),
            virtual_us,
            wait_total_us: row.get("wait_total_us").and_then(Json::as_f64),
            par_over_seq,
            utilization: row.get("utilization").and_then(Json::as_f64),
            steal_rate: row.get("steal_rate").and_then(Json::as_f64),
            barrier_share: row.get("barrier_share").and_then(Json::as_f64),
            events_dropped: row.get("events_dropped").and_then(Json::as_u64),
            campaign: false,
            p50_makespan_us: None,
            p99_makespan_us: None,
            p50_wait_total_us: None,
            p99_wait_total_us: None,
            walls,
            phases,
        });
    }
    Ok(Bench {
        host_cores,
        key_type,
        rows,
        kernels,
    })
}

/// Maps a campaign report (`campaign_json` / `ftsort-campaign --out`) onto
/// the diff machinery: one row per cell, keyed `(n, r, m, 0, link_model)`,
/// with the cell's mean makespan as `virtual_us`, mean wait as
/// `wait_total_us`, the four interpolated quantiles as dedicated metrics
/// and `runs_failed` as `events_dropped`. Campaign quantities are all
/// virtual, so `host_cores` is irrelevant (fixed at 1 on both sides).
fn parse_campaign(doc: &Json) -> Result<Bench, String> {
    let int = |o: &Json, k: &str, ctx: &str| -> Result<u64, String> {
        o.get(k)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("{ctx}: missing integer '{k}'"))
    };
    let m = int(doc, "m", "campaign report")?;
    let link_model = doc
        .get("link_model")
        .and_then(Json::as_str)
        .unwrap_or("uncontended")
        .to_string();
    let key_type = doc
        .get("key_type")
        .and_then(Json::as_str)
        .map(str::to_string);
    let Some(Json::Arr(cells)) = doc.get("cells") else {
        return Err("campaign report: 'cells' is not an array".into());
    };
    let mut rows = Vec::new();
    for (i, cell) in cells.iter().enumerate() {
        let ctx = format!("cells[{i}]");
        let mean = |metric: &str| -> Option<f64> {
            let agg = cell.get(metric)?;
            let count = agg.get("count").and_then(Json::as_u64)?;
            let sum = agg.get("sum").and_then(Json::as_f64)?;
            if count == 0 {
                Some(0.0)
            } else {
                Some(sum / count as f64)
            }
        };
        rows.push(Row {
            n: int(cell, "n", &ctx)?,
            r: int(cell, "r", &ctx)?,
            m,
            workers: 0,
            link_model: link_model.clone(),
            virtual_us: mean("makespan_us"),
            wait_total_us: mean("wait_total_us"),
            par_over_seq: None,
            utilization: None,
            steal_rate: None,
            barrier_share: None,
            events_dropped: cell.get("runs_failed").and_then(Json::as_u64),
            campaign: true,
            p50_makespan_us: cell.get("p50_makespan_us").and_then(Json::as_f64),
            p99_makespan_us: cell.get("p99_makespan_us").and_then(Json::as_f64),
            p50_wait_total_us: cell.get("p50_wait_total_us").and_then(Json::as_f64),
            p99_wait_total_us: cell.get("p99_wait_total_us").and_then(Json::as_f64),
            walls: Vec::new(),
            phases: Vec::new(),
        });
    }
    Ok(Bench {
        host_cores: 1,
        key_type,
        rows,
        kernels: Vec::new(),
    })
}
