//! Regenerates **Table 2** of the paper: best/worst-case processor
//! utilization of the proposed partition versus the maximum-dimensional
//! fault-free subcube (MFFS) method, for `3 ≤ n ≤ 6`, `1 ≤ r ≤ n − 1`.
//!
//! Utilization = running processors / normal processors (×100%).
//!
//! ```text
//! cargo run -p ft-bench --release --bin table2 [-- --trials 10000 --seed 1992 --ablation-selection]
//! ```

use ft_bench::{random_faults, UtilizationCell, DEFAULT_SEED, DEFAULT_TRIALS};
use ftsort::partition::partition;
use ftsort::select::{extra_comm_cost, select_cutting_sequence};

fn main() {
    let mut trials = DEFAULT_TRIALS;
    let mut seed = DEFAULT_SEED;
    let mut ablation = false;
    let mut exhaustive = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--trials" => trials = args.next().and_then(|v| v.parse().ok()).unwrap_or(trials),
            "--seed" => seed = args.next().and_then(|v| v.parse().ok()).unwrap_or(seed),
            "--ablation-selection" => ablation = true,
            "--exhaustive" => exhaustive = true,
            // Accepted for interface uniformity with the other report bins;
            // Table 2 only runs the partition algorithm, no simulation, so
            // the engine choice cannot change anything.
            "--engine" => {
                let _ = ft_bench::parse_engine(args.next());
                eprintln!("note: table2 runs no simulation; --engine has no effect");
            }
            "--threads" => {
                let _ = args.next();
                eprintln!("note: table2 runs no simulation; --threads has no effect");
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
    }
    let mut rng = ft_bench::rng(seed);

    if exhaustive {
        println!("Table 2 (EXACT): processor utilization (%), proposed vs MFFS,");
        println!("over every possible fault placement per (n, r)\n");
    } else {
        println!("Table 2: processor utilization (%), proposed vs MFFS, over");
        println!("{trials} random fault placements per (n, r); seed = {seed}\n");
    }
    println!(
        "{:>2} {:>2} | {:>10} {:>10} | {:>10} {:>10}",
        "n", "r", "ours best", "ours worst", "MFFS best", "MFFS worst"
    );
    println!("{}", "-".repeat(56));
    for n in 3..=6 {
        for r in 1..n {
            let cell = if exhaustive {
                UtilizationCell::collect_exhaustive(n, r)
            } else {
                UtilizationCell::collect(n, r, trials, &mut rng)
            };
            println!(
                "{:>2} {:>2} | {:>9.1}% {:>9.1}% | {:>9.1}% {:>9.1}%",
                n, r, cell.ours_best, cell.ours_worst, cell.mffs_best, cell.mffs_worst
            );
        }
        println!("{}", "-".repeat(56));
    }
    println!("\nPaper reference points (n=6, r=4): ours 100% best / 93.3% worst;");
    println!("MFFS 53.3% best / 26.6% worst.");

    if ablation {
        ablation_selection(trials.min(2_000), &mut rng);
    }
}

/// Ablation C: how much extra communication the formula-(1) heuristic saves
/// over picking an arbitrary (first) member of Ψ.
fn ablation_selection(trials: usize, rng: &mut rand::rngs::StdRng) {
    println!("\nAblation: heuristic selection (formula 1) vs first member of Ψ");
    println!(
        "{:>2} {:>2} | {:>10} {:>10} {:>9}",
        "n", "r", "heuristic", "first-Ψ", "saved"
    );
    println!("{}", "-".repeat(44));
    for n in 4..=6 {
        for r in 2..n {
            let mut chosen = 0.0f64;
            let mut naive = 0.0f64;
            for _ in 0..trials {
                let faults = random_faults(n, r, rng);
                let psi = partition(&faults).expect("separable").cutting_set;
                let sel = select_cutting_sequence(&faults, &psi);
                chosen += sel.cost as f64;
                naive += extra_comm_cost(&faults, &psi[0]).1 as f64;
            }
            let t = trials as f64;
            println!(
                "{:>2} {:>2} | {:>10.3} {:>10.3} {:>8.1}%",
                n,
                r,
                chosen / t,
                naive / t,
                (1.0 - chosen / naive.max(1e-12)) * 100.0
            );
        }
    }
}
