//! Critical-path diff: run the fault-tolerant sort twice — same keys,
//! two fault sets — and attribute the entire makespan delta to named
//! (phase, link) critical-path segments.
//!
//! Where `critical_path` answers "what gates *this* run", this report
//! answers "what got *slower* when the fault pattern changed": extra
//! faults reroute compare-splits over multi-hop detours and shrink the
//! subcube sizes, and the diff shows exactly which phase and which
//! dimension's links absorb the cost. Because each run's critical-path
//! segments tile `[0, makespan]`, the per-bucket deltas sum to exactly
//! the makespan delta — 100% of the slowdown is attributed.
//!
//! ```text
//! cargo run -p ft-bench --release --bin critical_path_diff \
//!     [-- --n 6 --faults-a 9 --faults-b 9,22 --m 4800 --seed 1992 --engine seq --threads 4]
//! ```

use ft_bench::{parse_engine, random_keys, DEFAULT_SEED};
use ftsort::ftsort::{fault_tolerant_sort_observed, phase_name, FtConfig, FtPlan};
use hypercube::fault::FaultSet;
use hypercube::obs::critical_path::CriticalPath;
use hypercube::obs::diff::{render_diff, DiffRow, SegmentProfile};
use hypercube::sim::EngineKind;
use hypercube::topology::Hypercube;

fn parse_faults(value: Option<String>) -> Vec<u32> {
    value
        .unwrap_or_default()
        .split(',')
        .filter(|s| !s.is_empty())
        .filter_map(|v| v.trim().parse().ok())
        .collect()
}

fn main() {
    let mut n = 6usize;
    let mut faults_a: Vec<u32> = vec![9];
    let mut faults_b: Vec<u32> = vec![9, 22];
    let mut m_total = 4_800usize;
    let mut seed = DEFAULT_SEED;
    let mut engine = EngineKind::default();
    let mut threads: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--n" => n = args.next().and_then(|v| v.parse().ok()).unwrap_or(n),
            "--faults-a" => faults_a = parse_faults(args.next()),
            "--faults-b" => faults_b = parse_faults(args.next()),
            "--m" => m_total = args.next().and_then(|v| v.parse().ok()).unwrap_or(m_total),
            "--seed" => seed = args.next().and_then(|v| v.parse().ok()).unwrap_or(seed),
            "--engine" => engine = parse_engine(args.next()),
            "--threads" => threads = args.next().and_then(|v| v.parse().ok()),
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
    }
    // Same keys for both runs: the delta isolates the fault pattern.
    let data = random_keys(m_total, &mut ft_bench::rng(seed));
    let profile = |fault_list: &[u32]| {
        let faults = FaultSet::from_raw(Hypercube::new(n), fault_list);
        let plan = match FtPlan::new(&faults) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        };
        let config = FtConfig {
            engine,
            tracing: true,
            threads,
            ..FtConfig::default()
        };
        let (out, _, obs) = fault_tolerant_sort_observed(&plan, &config, data.clone());
        assert!(out.sorted.windows(2).all(|w| w[0] <= w[1]), "output sorted");
        let path = CriticalPath::compute(&obs).expect("traced run has a path");
        SegmentProfile::collect(&obs, &path, &phase_name)
    };
    let a = profile(&faults_a);
    let b = profile(&faults_b);
    println!(
        "Critical-path diff of the FT sort: Q{n}, M = {m_total}, seed = {seed}, \
         faults {faults_a:?} vs {faults_b:?}"
    );
    let diff = hypercube::obs::diff::diff_profiles(&a, &b);
    assert!(!diff.is_empty(), "critical paths produced no segments");
    let attributed: f64 = diff.iter().map(DiffRow::delta).sum();
    let delta = b.makespan - a.makespan;
    assert!(
        (attributed - delta).abs() <= 1e-6 * delta.abs().max(1.0),
        "attribution must cover the makespan delta: {attributed} vs {delta}"
    );
    print!(
        "{}",
        render_diff(
            &a,
            &b,
            &format!("faults {faults_a:?}"),
            &format!("faults {faults_b:?}")
        )
    );
}
