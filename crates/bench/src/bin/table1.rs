//! Regenerates **Table 1** of the paper: the percentage distribution of
//! *mincut* values over 10 000 random fault placements, for `3 ≤ n ≤ 6`
//! and `0 ≤ r ≤ n − 1`.
//!
//! ```text
//! cargo run -p ft-bench --release --bin table1 [-- --trials 10000 --seed 1992]
//! ```

use ft_bench::{fault_set_count, MincutHistogram, DEFAULT_SEED, DEFAULT_TRIALS};

fn main() {
    let mut trials = DEFAULT_TRIALS;
    let mut seed = DEFAULT_SEED;
    let mut exhaustive = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--trials" => trials = args.next().and_then(|v| v.parse().ok()).unwrap_or(trials),
            "--seed" => seed = args.next().and_then(|v| v.parse().ok()).unwrap_or(seed),
            "--exhaustive" => exhaustive = true,
            // Accepted for interface uniformity with the other report bins;
            // Table 1 only runs the partition algorithm, no simulation, so
            // the engine choice cannot change anything.
            "--engine" => {
                let _ = ft_bench::parse_engine(args.next());
                eprintln!("note: table1 runs no simulation; --engine has no effect");
            }
            "--threads" => {
                let _ = args.next();
                eprintln!("note: table1 runs no simulation; --threads has no effect");
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
    }
    let mut rng = ft_bench::rng(seed);

    if exhaustive {
        println!("Table 1 (EXACT): percentages of mincut values (m) over every");
        println!("possible fault placement per (n, r)\n");
    } else {
        println!("Table 1: percentages of mincut values (m) over {trials} random");
        println!("fault placements per (n, r); seed = {seed}\n");
    }
    println!(
        "{:>2} {:>2} | {:>8} {:>8} {:>8} {:>8} {:>8}",
        "n", "r", "m=0", "m=1", "m=2", "m=3", "m=4"
    );
    println!("{}", "-".repeat(52));
    for n in 3..=6 {
        for r in 0..n {
            let h = if exhaustive {
                let _ = fault_set_count(n, r); // documented size of the cell
                MincutHistogram::collect_exhaustive(n, r)
            } else {
                MincutHistogram::collect(n, r, trials, &mut rng)
            };
            print!("{n:>2} {r:>2} |");
            for m in 0..=4 {
                let p = h.percent(m);
                if p == 0.0 {
                    print!(" {:>8}", "-");
                } else {
                    print!(" {:>7.2}%", p);
                }
            }
            println!();
        }
        println!("{}", "-".repeat(52));
    }
    println!("\nPaper reference points: n=6, r=5 → m=3 in ≈93.85% of cases and");
    println!("m=4 in ≈0.15%; small mincut (few dangling processors) dominates.");
}
