//! Scaling experiments beyond the paper's Q3–Q6 envelope:
//!
//! 1. machine-size sweep at fixed M: how the fault-tolerant sort's
//!    advantage over the MFFS fallback grows with `n` (the paper's
//!    "underutilization worsens with scale" argument, quantified);
//! 2. fault-count sweep past the `r ≤ n − 1` guarantee: the partition
//!    algorithm still applies whenever the faults are separable and no
//!    normal node is isolated (paper §2.2's closing remark).
//!
//! ```text
//! cargo run -p ft-bench --release --bin scaling \
//!     [-- --m 64000 --seed 1992 --engine seq --key-type i64 --threads 4 --trace-out t.json --metrics-out m.json]
//! ```

use ft_bench::{parse_engine, random_faults, random_keys_typed, GenKey, ObsFlags, DEFAULT_SEED};
use ftsort::bitonic::Protocol;
use ftsort::ftsort::{fault_tolerant_sort_observed, FtConfig, FtPlan};
use ftsort::mffs::mffs_sort_with_engine;
use ftsort::seq::{KeyPair, KeyType};
use hypercube::cost::CostModel;
use hypercube::fault::FaultSet;
use hypercube::sim::EngineKind;
use hypercube::topology::Hypercube;

fn main() {
    let mut m_total = 64_000usize;
    let mut seed = DEFAULT_SEED;
    let mut engine = EngineKind::default();
    let mut key_type = KeyType::default();
    let mut obs_flags = ObsFlags::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--m" => m_total = args.next().and_then(|v| v.parse().ok()).unwrap_or(m_total),
            "--seed" => seed = args.next().and_then(|v| v.parse().ok()).unwrap_or(seed),
            "--engine" => engine = parse_engine(args.next()),
            "--key-type" => key_type = ft_bench::parse_key_type(args.next()),
            other => {
                if !obs_flags.parse(other, &mut args) {
                    eprintln!("unknown argument {other}");
                    std::process::exit(2);
                }
            }
        }
    }
    match key_type {
        KeyType::U32 => run::<u32>(m_total, seed, engine, key_type, obs_flags),
        KeyType::U64 => run::<u64>(m_total, seed, engine, key_type, obs_flags),
        KeyType::I64 => run::<i64>(m_total, seed, engine, key_type, obs_flags),
        KeyType::Pair => run::<KeyPair>(m_total, seed, engine, key_type, obs_flags),
    }
}

fn run<K: GenKey>(
    m_total: usize,
    seed: u64,
    engine: EngineKind,
    key_type: KeyType,
    mut obs_flags: ObsFlags,
) {
    let mut rng = ft_bench::rng(seed);

    println!(
        "1. Machine-size sweep at r = n − 1 faults, M = {m_total}; seed = {seed}, \
         keys = {key_type}\n"
    );
    println!(
        "{:>2} {:>5} {:>8} {:>12} {:>12} {:>8}",
        "n", "N", "live N'", "ours ms", "MFFS ms", "speedup"
    );
    println!("{}", "-".repeat(54));
    let trials = 6;
    for n in 3..=8 {
        let mut live = 0usize;
        let mut ours_ms = 0.0;
        let mut mffs_ms = 0.0;
        for _ in 0..trials {
            let faults = random_faults(n, n - 1, &mut rng);
            let data: Vec<K> = random_keys_typed(m_total, &mut rng);
            let plan = FtPlan::new(&faults).expect("tolerable");
            live += plan.live_count();
            let config = FtConfig {
                protocol: Protocol::HalfExchange,
                engine,
                tracing: obs_flags.tracing(),
                threads: obs_flags.threads,
                ..FtConfig::default()
            };
            let (out, _, obs) = fault_tolerant_sort_observed(&plan, &config, data.clone());
            ours_ms += out.time_us / 1000.0;
            if obs_flags.enabled() {
                obs_flags.observe(obs);
            }
            if obs_flags.sched_enabled() {
                obs_flags.profile_sched(&plan, &config, data.clone());
            }
            mffs_ms += mffs_sort_with_engine(
                &faults,
                CostModel::default(),
                data,
                Protocol::HalfExchange,
                engine,
            )
            .time_us
                / 1000.0;
        }
        let t = trials as f64;
        println!(
            "{:>2} {:>5} {:>8.1} {:>12.1} {:>12.1} {:>7.2}×",
            n,
            1 << n,
            live as f64 / t,
            ours_ms / t,
            mffs_ms / t,
            mffs_ms / ours_ms
        );
    }

    println!("\n2. Fault counts past r = n − 1 on Q6 (paper §2.2: the partition");
    println!("still applies while the faults are separable and nobody is isolated)\n");
    println!(
        "{:>2} {:>10} {:>4} {:>8} {:>10} {:>12}",
        "r", "tolerable", "m", "live N'", "util %", "ours ms"
    );
    println!("{}", "-".repeat(52));
    let cube = Hypercube::new(6);
    for r in [5usize, 8, 12, 16, 24, 32] {
        // draw until we find a set the planner accepts (or give up)
        let mut plan: Option<(FaultSet, FtPlan)> = None;
        let mut attempts = 0;
        while plan.is_none() && attempts < 200 {
            attempts += 1;
            let faults = FaultSet::random(cube, r, &mut rng);
            if let Ok(p) = FtPlan::new(&faults) {
                if p.structure().s() >= 1 {
                    plan = Some((faults, p));
                }
            }
        }
        match plan {
            Some((_faults, p)) => {
                let data: Vec<K> = random_keys_typed(m_total, &mut rng);
                let config = FtConfig {
                    protocol: Protocol::HalfExchange,
                    engine,
                    tracing: obs_flags.tracing(),
                    threads: obs_flags.threads,
                    ..FtConfig::default()
                };
                let sched_data = obs_flags.sched_enabled().then(|| data.clone());
                let (out, _, obs) = fault_tolerant_sort_observed(&p, &config, data);
                if obs_flags.enabled() {
                    obs_flags.observe(obs);
                }
                if let Some(sched_data) = sched_data {
                    obs_flags.profile_sched(&p, &config, sched_data);
                }
                println!(
                    "{:>2} {:>10} {:>4} {:>8} {:>9.1}% {:>12.1}",
                    r,
                    format!("{attempts} tries"),
                    p.partition().mincut,
                    p.live_count(),
                    p.utilization() * 100.0,
                    out.time_us / 1000.0
                );
            }
            None => println!("{r:>2} {:>10}", "none found"),
        }
    }
    obs_flags.write();
}
