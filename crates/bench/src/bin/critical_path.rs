//! Critical-path report: runs the fault-tolerant sort with tracing on,
//! walks the happens-before graph backward from the last-finishing node,
//! and prints where the virtual makespan actually went — per-phase
//! attribution of the longest dependency chain (which phases *gate* the
//! run, as opposed to the per-processor maxima of `breakdown`) plus an
//! ASCII gantt chart with the path capitalized.
//!
//! Both engines produce the identical trace, so the report is
//! engine-invariant; `--engine` only changes how fast it regenerates.
//!
//! ```text
//! cargo run -p ft-bench --release --bin critical_path \
//!     [-- --n 5 --faults 3,5,16,24 --m 4800 --seed 1992 --engine seq --width 72]
//! ```

use ft_bench::{parse_engine, random_keys, DEFAULT_SEED};
use ftsort::ftsort::{fault_tolerant_sort_observed, phase_name, FtConfig, FtPlan};
use hypercube::fault::FaultSet;
use hypercube::obs::critical_path::{gantt, CriticalPath, SegmentKind};
use hypercube::sim::EngineKind;
use hypercube::topology::Hypercube;

fn main() {
    let mut n = 5usize;
    let mut fault_list: Vec<u32> = vec![3, 5, 16, 24];
    let mut m_total = 4_800usize;
    let mut seed = DEFAULT_SEED;
    let mut engine = EngineKind::default();
    let mut width = 72usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--n" => n = args.next().and_then(|v| v.parse().ok()).unwrap_or(n),
            "--faults" => {
                fault_list = args
                    .next()
                    .unwrap_or_default()
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .filter_map(|v| v.trim().parse().ok())
                    .collect();
            }
            "--m" => m_total = args.next().and_then(|v| v.parse().ok()).unwrap_or(m_total),
            "--seed" => seed = args.next().and_then(|v| v.parse().ok()).unwrap_or(seed),
            "--engine" => engine = parse_engine(args.next()),
            "--width" => width = args.next().and_then(|v| v.parse().ok()).unwrap_or(width),
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
    }
    let faults = FaultSet::from_raw(Hypercube::new(n), &fault_list);
    let plan = match FtPlan::new(&faults) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    let mut rng = ft_bench::rng(seed);
    let data = random_keys(m_total, &mut rng);
    let config = FtConfig {
        engine,
        tracing: true,
        ..FtConfig::default()
    };
    let (out, _, obs) = fault_tolerant_sort_observed(&plan, &config, data);
    assert!(out.sorted.windows(2).all(|w| w[0] <= w[1]), "output sorted");

    let path = CriticalPath::compute(&obs).expect("traced run has a path");
    println!(
        "Critical path of the FT sort: Q{n} faults {:?}, M = {m_total}, seed = {seed}",
        faults.to_vec()
    );
    println!(
        "makespan {:.1} us, path of {} segments ending at node {}",
        path.makespan,
        path.segments.len(),
        path.end_node.raw()
    );
    let transfer_us: f64 = path
        .segments
        .iter()
        .filter(|s| s.kind == SegmentKind::Transfer)
        .map(|s| s.duration())
        .sum();
    println!(
        "gated by message transfers for {:.1} us ({:.1}% of the path)\n",
        transfer_us,
        100.0 * transfer_us / path.makespan
    );
    println!("{:<16} {:>12} {:>7}", "phase", "on-path us", "share");
    println!("{}", "-".repeat(37));
    let rows = path.attribute(&obs, &phase_name);
    let mut sum = 0.0;
    for (name, us) in &rows {
        sum += us;
        println!("{name:<16} {us:>12.1} {:>6.1}%", 100.0 * us / path.makespan);
    }
    println!("{}", "-".repeat(37));
    println!(
        "{:<16} {sum:>12.1} {:>6.1}%\n",
        "total",
        100.0 * sum / path.makespan
    );
    debug_assert!((sum - path.makespan).abs() <= 1e-6 * path.makespan.max(1.0));
    print!("{}", gantt(&obs, &path, &phase_name, width));
}
