//! Critical-path report: runs the fault-tolerant sort with tracing on,
//! walks the happens-before graph backward from the last-finishing node,
//! and prints where the virtual makespan actually went — per-phase
//! attribution of the longest dependency chain (which phases *gate* the
//! run, as opposed to the per-processor maxima of `breakdown`) plus an
//! ASCII gantt chart with the path capitalized.
//!
//! Both engines produce the identical trace, so the report is
//! engine-invariant; `--engine` only changes how fast it regenerates.
//!
//! ```text
//! cargo run -p ft-bench --release --bin critical_path \
//!     [-- --n 5 --faults 3,5,16,24 --m 4800 --seed 1992 --engine seq --threads 4 --width 72]
//! ```

use ft_bench::{parse_engine, random_keys, DEFAULT_SEED};
use ftsort::ftsort::{fault_tolerant_sort_observed, phase_name, FtConfig, FtPlan};
use hypercube::fault::FaultSet;
use hypercube::obs::critical_path::{render_report, CriticalPath};
use hypercube::sim::EngineKind;
use hypercube::topology::Hypercube;

fn main() {
    let mut n = 5usize;
    let mut fault_list: Vec<u32> = vec![3, 5, 16, 24];
    let mut m_total = 4_800usize;
    let mut seed = DEFAULT_SEED;
    let mut engine = EngineKind::default();
    let mut threads: Option<usize> = None;
    let mut width = 72usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--n" => n = args.next().and_then(|v| v.parse().ok()).unwrap_or(n),
            "--threads" => threads = args.next().and_then(|v| v.parse().ok()),
            "--faults" => {
                fault_list = args
                    .next()
                    .unwrap_or_default()
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .filter_map(|v| v.trim().parse().ok())
                    .collect();
            }
            "--m" => m_total = args.next().and_then(|v| v.parse().ok()).unwrap_or(m_total),
            "--seed" => seed = args.next().and_then(|v| v.parse().ok()).unwrap_or(seed),
            "--engine" => engine = parse_engine(args.next()),
            "--width" => width = args.next().and_then(|v| v.parse().ok()).unwrap_or(width),
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
    }
    let faults = FaultSet::from_raw(Hypercube::new(n), &fault_list);
    let plan = match FtPlan::new(&faults) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    let mut rng = ft_bench::rng(seed);
    let data = random_keys(m_total, &mut rng);
    let config = FtConfig {
        engine,
        tracing: true,
        threads,
        ..FtConfig::default()
    };
    let (out, _, obs) = fault_tolerant_sort_observed(&plan, &config, data);
    assert!(out.sorted.windows(2).all(|w| w[0] <= w[1]), "output sorted");

    let path = CriticalPath::compute(&obs).expect("traced run has a path");
    println!(
        "Critical path of the FT sort: Q{n} faults {:?}, M = {m_total}, seed = {seed}",
        faults.to_vec()
    );
    print!("{}", render_report(&obs, &path, &phase_name, width));
}
