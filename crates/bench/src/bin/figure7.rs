//! Regenerates **Figure 7** of the paper: execution time of the proposed
//! fault-tolerant sorting algorithm (thin lines, one per fault count `r`)
//! versus the bitonic sorting algorithm on fault-free subcubes `Q_{n-t}`
//! (thick lines — what the MFFS baseline would run on), as the number of
//! elements `M` sweeps `3.2·10³ … 3.2·10⁵`.
//!
//! * `figure7 --n 6` → Figure 7(a)
//! * `figure7 --n 5` → Figure 7(b)
//! * `figure7 --n 3` → Figure 7(c)
//! * `figure7 --n 4` → Figure 7(d)
//! * no `--n` → all four panels
//!
//! ```text
//! cargo run -p ft-bench --release --bin figure7 \
//!     [-- --n 6 --seed 1992 --trials 3 --engine seq --key-type i64 --threads 4 --trace-out t.json --metrics-out m.json]
//! ```

use ft_bench::{parse_engine, random_faults, random_keys_typed, GenKey, ObsFlags, DEFAULT_SEED};
use ftsort::bitonic::{bitonic_sort_threaded, Protocol};
use ftsort::ftsort::{fault_tolerant_sort_observed, FtConfig, FtPlan};
use ftsort::seq::{KeyPair, KeyType};
use hypercube::cost::CostModel;
use hypercube::sim::EngineKind;
use hypercube::topology::Hypercube;

const M_SWEEP: [usize; 5] = [3_200, 10_000, 32_000, 100_000, 320_000];

fn main() {
    let mut panel: Option<usize> = None;
    let mut seed = DEFAULT_SEED;
    let mut trials = 3usize;
    let mut csv = false;
    let mut cost = CostModel::default();
    let mut engine = EngineKind::default();
    let mut key_type = KeyType::default();
    let mut obs_flags = ObsFlags::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--n" => panel = args.next().and_then(|v| v.parse().ok()),
            "--seed" => seed = args.next().and_then(|v| v.parse().ok()).unwrap_or(seed),
            "--trials" => trials = args.next().and_then(|v| v.parse().ok()).unwrap_or(trials),
            "--csv" => csv = true,
            "--engine" => engine = parse_engine(args.next()),
            "--key-type" => key_type = ft_bench::parse_key_type(args.next()),
            // sensitivity knobs (see EXPERIMENTS.md §Sensitivity)
            "--tsr" => {
                cost.t_sr = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(cost.t_sr)
            }
            "--tc" => cost.t_c = args.next().and_then(|v| v.parse().ok()).unwrap_or(cost.t_c),
            "--startup" => {
                cost.t_startup = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(cost.t_startup)
            }
            other => {
                if !obs_flags.parse(other, &mut args) {
                    eprintln!("unknown argument {other}");
                    std::process::exit(2);
                }
            }
        }
    }
    let panels: Vec<usize> = match panel {
        Some(n) => vec![n],
        None => vec![6, 5, 3, 4], // the paper's (a), (b), (c), (d) order
    };
    for n in panels {
        match key_type {
            KeyType::U32 => {
                figure7_panel::<u32>(n, seed, trials, csv, cost, engine, &mut obs_flags)
            }
            KeyType::U64 => {
                figure7_panel::<u64>(n, seed, trials, csv, cost, engine, &mut obs_flags)
            }
            KeyType::I64 => {
                figure7_panel::<i64>(n, seed, trials, csv, cost, engine, &mut obs_flags)
            }
            KeyType::Pair => {
                figure7_panel::<KeyPair>(n, seed, trials, csv, cost, engine, &mut obs_flags)
            }
        }
        println!();
    }
    obs_flags.write();
}

#[allow(clippy::too_many_arguments)]
fn figure7_panel<K: GenKey>(
    n: usize,
    seed: u64,
    trials: usize,
    csv: bool,
    cost: CostModel,
    engine: EngineKind,
    obs_flags: &mut ObsFlags,
) {
    let label = match n {
        6 => "(a)",
        5 => "(b)",
        3 => "(c)",
        4 => "(d)",
        _ => "(?)",
    };
    let mut rng = ft_bench::rng(seed);
    if csv {
        print!("M");
        for r in 0..n {
            print!(",ours_r{r}");
        }
        for t in 1..n {
            print!(",q{}", n - t);
        }
        println!();
    } else {
        println!(
            "Figure 7{label}: execution time (simulated ms) on Q{n}; seed = {seed}, \
             {trials} fault draws per r; cost model {:?}",
            cost
        );
        print!("{:>9}", "M");
        for r in 0..n {
            print!(" {:>10}", format!("ours r={r}"));
        }
        for t in 1..n {
            print!(" {:>10}", format!("Q{}", n - t));
        }
        println!();
        println!("{}", "-".repeat(9 + 11 * (n + n - 1)));
    }

    // pre-draw fault sets per r (shared across the M sweep so each thin
    // line corresponds to fixed machines, like the paper's averaging)
    let fault_sets: Vec<Vec<hypercube::fault::FaultSet>> = (0..n)
        .map(|r| (0..trials).map(|_| random_faults(n, r, &mut rng)).collect())
        .collect();

    for m_total in M_SWEEP {
        let data: Vec<K> = random_keys_typed(m_total, &mut rng);
        if csv {
            print!("{m_total}");
        } else {
            print!("{m_total:>9}");
        }
        for sets in fault_sets.iter() {
            let mut total = 0.0;
            for faults in sets {
                let plan = FtPlan::new(faults).expect("tolerable");
                let (out, _, obs) = fault_tolerant_sort_observed(
                    &plan,
                    &FtConfig {
                        cost,
                        protocol: Protocol::HalfExchange,
                        engine,
                        tracing: obs_flags.tracing(),
                        threads: obs_flags.threads,
                        ..FtConfig::default()
                    },
                    data.clone(),
                );
                total += out.time_us;
                if obs_flags.enabled() {
                    obs_flags.observe(obs);
                }
                if obs_flags.sched_enabled() {
                    let config = FtConfig {
                        cost,
                        protocol: Protocol::HalfExchange,
                        engine,
                        ..FtConfig::default()
                    };
                    obs_flags.profile_sched(&plan, &config, data.clone());
                }
            }
            let ms = total / sets.len() as f64 / 1000.0;
            if csv {
                print!(",{ms:.3}");
            } else {
                print!(" {ms:>10.1}");
            }
        }
        for t in 1..n {
            let out = bitonic_sort_threaded(
                Hypercube::new(n - t),
                cost,
                data.clone(),
                Protocol::HalfExchange,
                engine,
                obs_flags.threads,
            );
            let ms = out.time_us / 1000.0;
            if csv {
                print!(",{ms:.3}");
            } else {
                print!(" {ms:>10.1}");
            }
        }
        println!();
    }
    if csv {
        return;
    }
    match n {
        6 => println!("Paper claims: r=1,2 < fault-free Q5; r=3,4,5 < fault-free Q4 (but > Q5)."),
        5 => println!("Paper claims: r=1,2 < fault-free Q4; r=3,4 < fault-free Q3."),
        _ => {}
    }
}
