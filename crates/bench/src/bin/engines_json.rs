//! Engine shoot-out: wall-clock time of the **threaded** MIMD engine, the
//! **sequential** event-driven engine, and the **parallel** work-stealing
//! engine running the identical full fault-tolerant sort, emitted as
//! machine-readable `BENCH_engines.json`.
//!
//! All three engines produce byte-identical simulated results (sorted
//! output, virtual time, operation counts — asserted here per run); the
//! only thing that differs is how long the host takes to compute them. The
//! sequential engine beats the threaded one because it replaces `2^n` OS
//! threads + channel handoffs with one lowest-virtual-clock scheduler loop
//! and zero-allocation buffer reuse; the parallel engine additionally
//! work-steals cache-sized node shards across a worker pool, so its
//! advantage over `seq` scales with `host_cores` (reported in the JSON).
//! Each `n` is benchmarked at several worker counts — the
//! `{1, 2, 4, host_cores}` ladder, deduplicated — one JSON row per
//! `(n, workers)` pair, so the par-beats-seq crossover is visible in the
//! data and `bench_diff` can gate on it. On a single-core host every
//! rung degenerates to the seq loop plus scheduler overhead and the
//! crossover cannot manifest (rungs above the core count still run: they
//! exercise oversubscription and keep row keys comparable across hosts).
//!
//! The full ladder runs under **both link models**: the paper's
//! uncontended pricing and the contended (one message per directed link)
//! model, one row set each, distinguished by the `link_model` column.
//! Contended rows additionally carry `wait_total_us` — the total
//! link-queueing wait summed over nodes, a deterministic virtual quantity
//! `bench_diff` gates at the virtual-time tolerance (uncontended rows
//! report it too; it is identically 0 there).
//!
//! Keys default to `i64`; `--key-type u32|u64|i64|pair` selects the
//! element type the whole run is monomorphised over (recorded top-level).
//! A `kernel` section times the merge kernels themselves — scalar vs
//! branchless vs blocked, per key type — so kernel-level regressions are
//! caught even when the full-sort wall clock hides them; `bench_diff`
//! gates the kernel speedups like the engine wall ratios (same host,
//! banded by `--wall-tolerance`).
//!
//! ```text
//! cargo run -p ft-bench --release --bin engines_json \
//!     [-- --sizes 6,8,10 --m 16000 --trials 3 --seed 1992 \
//!          --key-type i64 --out BENCH_engines.json]
//! ```
//!
//! Compare two outputs (e.g. before/after a scheduler change) with the
//! `bench_diff` binary, which flags per-engine and per-phase regressions
//! and checks the multi-core crossover.

use ft_bench::{random_faults, random_keys_typed, GenKey, ObsFlags, DEFAULT_SEED};
use ftsort::bitonic::Protocol;
use ftsort::ftsort::{
    fault_tolerant_sort_configured, fault_tolerant_sort_observed, FtConfig, FtPlan,
};
use ftsort::seq::{KeyPair, KeyType};
use hypercube::sim::{EngineKind, LinkModel};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

struct Row {
    n: usize,
    r: usize,
    m_total: usize,
    /// Worker count the par engine was asked to run with for this row.
    workers: usize,
    /// Worker count that actually ran after the shard-count clamp
    /// (`schedule_for`): on small cubes fewer shards than workers exist.
    workers_effective: usize,
    /// Effective shard size (after `auto_shard_size`).
    shard_size: usize,
    /// Link pricing model this row ran under.
    link_model: LinkModel,
    virtual_us: f64,
    /// Total link-queueing wait over all nodes (µs); 0 under the
    /// uncontended model by construction.
    wait_total_us: f64,
    threaded_s: f64,
    seq_s: f64,
    par_s: f64,
    /// Per-phase virtual time, `(name, max-over-nodes µs)`, from the
    /// run's [`RunReport`](hypercube::obs::RunReport).
    phases: Vec<(String, f64)>,
}

/// One key type's merge-kernel timings: best-of merge-only wall clocks of
/// the scalar reference vs the branchless and blocked kernels on two
/// sorted runs of [`KERNEL_ELEMS_PER_RUN`] keys each.
struct KernelRow {
    key_type: &'static str,
    scalar_s: f64,
    branchless_s: f64,
    blocked_s: f64,
}

/// Per-run length for the kernel section: 32 Ki keys per run lands the
/// merged working set around L2 for 8-byte keys — the size class where
/// the branchless win is largest and host noise still averages out.
const KERNEL_ELEMS_PER_RUN: usize = 32_768;

/// The worker-count ladder for a host with `host_cores` cores:
/// `{1, 2, 4, host_cores}`, deduplicated, ascending. Rungs above the
/// core count still run — they measure the scheduler's oversubscription
/// robustness, and emitting them unconditionally keeps row keys
/// comparable across hosts with different core counts.
fn worker_ladder(host_cores: usize) -> Vec<usize> {
    let mut ladder = vec![1, 2, 4, host_cores];
    ladder.sort_unstable();
    ladder.dedup();
    ladder
}

struct Cfg {
    sizes: Vec<usize>,
    m_total: usize,
    trials: usize,
    seed: u64,
    out: String,
    key_type: KeyType,
    obs_flags: ObsFlags,
}

fn main() {
    let mut cfg = Cfg {
        sizes: vec![6, 8, 10],
        m_total: 16_000,
        trials: 3,
        seed: DEFAULT_SEED,
        out: String::from("BENCH_engines.json"),
        key_type: KeyType::default(),
        obs_flags: ObsFlags::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--sizes" => {
                cfg.sizes = args
                    .next()
                    .unwrap_or_default()
                    .split(',')
                    .filter_map(|v| v.parse().ok())
                    .collect();
                if cfg.sizes.is_empty() {
                    eprintln!("--sizes needs a comma list, e.g. 6,8,10");
                    std::process::exit(2);
                }
            }
            "--m" => {
                cfg.m_total = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(cfg.m_total)
            }
            "--trials" => {
                cfg.trials = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(cfg.trials)
            }
            "--seed" => cfg.seed = args.next().and_then(|v| v.parse().ok()).unwrap_or(cfg.seed),
            "--out" => cfg.out = args.next().unwrap_or(cfg.out),
            "--key-type" => cfg.key_type = ft_bench::parse_key_type(args.next()),
            other => {
                if !cfg.obs_flags.parse(other, &mut args) {
                    eprintln!("unknown argument {other}");
                    std::process::exit(2);
                }
            }
        }
    }
    // The whole run is monomorphised over the selected key type, exactly
    // like `ftsort-cli sort --key-type`.
    match cfg.key_type {
        KeyType::U32 => run::<u32>(cfg),
        KeyType::U64 => run::<u64>(cfg),
        KeyType::I64 => run::<i64>(cfg),
        KeyType::Pair => run::<KeyPair>(cfg),
    }
}

fn run<K: GenKey>(mut cfg: Cfg) {
    let mut rng = ft_bench::rng(cfg.seed);
    let host_cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let ladder = worker_ladder(host_cores);
    let (m_total, trials) = (cfg.m_total, cfg.trials);

    println!(
        "Engine wall-clock comparison, full FT sort, M = {m_total}, r = n − 1, \
         best of {trials} runs; seed = {}, keys = {}, host cores = {host_cores}, \
         par workers {ladder:?}\n",
        cfg.seed, cfg.key_type
    );
    println!(
        "{:>3} {:>3} {:>7} {:>12} {:>10} {:>10} {:>12} {:>12} {:>12} {:>9} {:>9}",
        "n",
        "r",
        "workers",
        "link",
        "virtual ms",
        "wait ms",
        "threaded s",
        "seq s",
        "par s",
        "seq/thr",
        "par/seq"
    );
    println!("{}", "-".repeat(110));

    let mut rows = Vec::new();
    for &n in &cfg.sizes {
        let r = n - 1;
        let faults = random_faults(n, r, &mut rng);
        let plan = FtPlan::new(&faults).expect("r = n − 1 is tolerable");
        let data: Vec<K> = random_keys_typed(m_total, &mut rng);
        for link_model in [LinkModel::Uncontended, LinkModel::Contended] {
            let time = |kind: EngineKind, threads: Option<usize>| {
                let config = FtConfig {
                    protocol: Protocol::HalfExchange,
                    engine: kind,
                    threads,
                    link_model,
                    ..FtConfig::default()
                };
                let mut best = f64::INFINITY;
                let mut outcome = None;
                for _ in 0..trials {
                    let start = Instant::now();
                    let run = fault_tolerant_sort_configured(&plan, &config, data.clone());
                    best = best.min(start.elapsed().as_secs_f64());
                    outcome = Some(run);
                }
                (best, outcome.expect("trials ≥ 1"))
            };
            let (threaded_s, threaded) = time(EngineKind::Threaded, None);
            let (seq_s, seq) = time(EngineKind::Seq, None);
            // the engines must be indistinguishable in simulated results
            assert_eq!(
                threaded.sorted, seq.sorted,
                "n={n} {link_model}: threaded output differs"
            );
            assert_eq!(
                threaded.time_us, seq.time_us,
                "n={n} {link_model}: threaded time differs"
            );
            assert_eq!(
                threaded.stats, seq.stats,
                "n={n} {link_model}: threaded counts differ"
            );
            // One extra (untimed) observed run per (n, link model): its
            // RunReport supplies the per-phase virtual-time split and the
            // link-wait total, and the observability exports reuse it — so
            // trace-recording overhead never contaminates the wall clocks.
            let config = FtConfig {
                protocol: Protocol::HalfExchange,
                engine: EngineKind::Seq,
                tracing: cfg.obs_flags.tracing(),
                link_model,
                ..FtConfig::default()
            };
            let (_, _, obs) = fault_tolerant_sort_observed(&plan, &config, data.clone());
            let report = obs.report(&ftsort::ftsort::phase_name);
            let phases: Vec<(String, f64)> = report
                .phases
                .iter()
                .map(|p| (p.name.clone(), p.max_node_us))
                .collect();
            let wait_total_us: f64 = report.nodes.iter().map(|m| m.link_wait_us).sum();
            // The exported observation stays the paper-model (uncontended)
            // run, as before the contended row set existed.
            if link_model == LinkModel::Uncontended {
                if cfg.obs_flags.enabled() {
                    cfg.obs_flags.observe(obs);
                }
                if cfg.obs_flags.sched_enabled() {
                    let config = FtConfig {
                        protocol: Protocol::HalfExchange,
                        ..FtConfig::default()
                    };
                    cfg.obs_flags.profile_sched(&plan, &config, data.clone());
                }
            }
            for &workers in &ladder {
                let (workers_effective, shard_size, _) =
                    hypercube::sim::par::schedule_for(plan.live_count(), Some(workers), None);
                let (par_s, par) = time(EngineKind::Par, Some(workers));
                assert_eq!(
                    par.sorted, seq.sorted,
                    "n={n} {link_model} workers={workers}: par sorted output differs"
                );
                assert_eq!(
                    par.time_us, seq.time_us,
                    "n={n} {link_model} workers={workers}: par virtual time differs"
                );
                assert_eq!(
                    par.stats, seq.stats,
                    "n={n} {link_model} workers={workers}: par operation counts differ"
                );
                println!(
                    "{:>3} {:>3} {:>7} {:>12} {:>10.1} {:>10.1} {:>12.3} {:>12.3} {:>12.3} \
                     {:>8.1}× {:>8.2}×",
                    n,
                    r,
                    workers,
                    link_model.to_string(),
                    seq.time_us / 1000.0,
                    wait_total_us / 1000.0,
                    threaded_s,
                    seq_s,
                    par_s,
                    threaded_s / seq_s,
                    seq_s / par_s
                );
                rows.push(Row {
                    n,
                    r,
                    m_total,
                    workers,
                    workers_effective,
                    shard_size,
                    link_model,
                    virtual_us: seq.time_us,
                    wait_total_us,
                    threaded_s,
                    seq_s,
                    par_s,
                    phases: phases.clone(),
                });
            }
        }
    }

    let kernels = time_kernel_rows(cfg.seed, trials);
    println!("\nMerge kernels, 2 × {KERNEL_ELEMS_PER_RUN} keys per merge, best-of wall clocks:");
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>10} {:>10}",
        "keys", "scalar s", "branchless s", "blocked s", "brl/scl", "blk/scl"
    );
    for k in &kernels {
        println!(
            "{:>6} {:>12.6} {:>12.6} {:>12.6} {:>9.2}× {:>9.2}×",
            k.key_type,
            k.scalar_s,
            k.branchless_s,
            k.blocked_s,
            k.scalar_s / k.branchless_s,
            k.scalar_s / k.blocked_s
        );
    }

    let json = render_json(&cfg, host_cores, &rows, &kernels);
    std::fs::write(&cfg.out, &json).expect("write BENCH_engines.json");
    println!("\nwrote {}", cfg.out);
    cfg.obs_flags.write();
}

/// Times the merge kernels for every key type (independent of
/// `--key-type`: the kernel section is a fixed-shape table so baselines
/// stay comparable). Merge-only wall clocks — the input refill memcpy is
/// outside the timed region — best of `5 × trials` reps after a warm-up.
fn time_kernel_rows(seed: u64, trials: usize) -> Vec<KernelRow> {
    fn one<K: GenKey>(key_type: &'static str, seed: u64, reps: usize) -> KernelRow {
        let mut rng = ft_bench::rng(seed ^ 0x6b65_726e);
        let mut a: Vec<K> = random_keys_typed(KERNEL_ELEMS_PER_RUN, &mut rng);
        let mut b: Vec<K> = random_keys_typed(KERNEL_ELEMS_PER_RUN, &mut rng);
        a.sort_unstable();
        b.sort_unstable();
        let time = |kernel: fn(&mut Vec<K>, &mut Vec<K>, &mut Vec<K>) -> u64| -> f64 {
            let mut out = Vec::with_capacity(2 * KERNEL_ELEMS_PER_RUN);
            let mut ka: Vec<K> = Vec::with_capacity(KERNEL_ELEMS_PER_RUN);
            let mut kb: Vec<K> = Vec::with_capacity(KERNEL_ELEMS_PER_RUN);
            let mut best = f64::INFINITY;
            for rep in 0..reps + 1 {
                ka.clear();
                ka.extend_from_slice(&a);
                kb.clear();
                kb.extend_from_slice(&b);
                let start = Instant::now();
                black_box(kernel(&mut ka, &mut kb, &mut out));
                let elapsed = start.elapsed().as_secs_f64();
                if rep > 0 {
                    // rep 0 is the warm-up
                    best = best.min(elapsed);
                }
            }
            best
        };
        KernelRow {
            key_type,
            scalar_s: time(ftsort::seq::merge_runs_into),
            branchless_s: time(ftsort::seq::merge_runs_branchless_into),
            blocked_s: time(ftsort::seq::merge_runs_blocked_into),
        }
    }
    let reps = 5 * trials.max(1);
    vec![
        one::<u32>("u32", seed, reps),
        one::<u64>("u64", seed, reps),
        one::<i64>("i64", seed, reps),
        one::<KeyPair>("pair", seed, reps),
    ]
}

/// Hand-rolled JSON so the report stays dependency-free.
fn render_json(cfg: &Cfg, host_cores: usize, rows: &[Row], kernels: &[KernelRow]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"bench\": \"engines\",");
    let _ = writeln!(s, "  \"seed\": {},", cfg.seed);
    let _ = writeln!(s, "  \"trials\": {},", cfg.trials);
    let _ = writeln!(s, "  \"host_cores\": {host_cores},");
    let _ = writeln!(s, "  \"key_type\": \"{}\",", cfg.key_type);
    let _ = writeln!(s, "  \"identical_simulated_results\": true,");
    let _ = writeln!(
        s,
        "  \"kernel\": {{\"elems_per_run\": {KERNEL_ELEMS_PER_RUN}, \"rows\": ["
    );
    for (i, k) in kernels.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"key_type\": \"{}\", \"scalar_s\": {:.9}, \"branchless_s\": {:.9}, \
             \"blocked_s\": {:.9}, \"speedups\": {{\"branchless_over_scalar\": {:.2}, \
             \"blocked_over_scalar\": {:.2}}}}}",
            k.key_type,
            k.scalar_s,
            k.branchless_s,
            k.blocked_s,
            k.scalar_s / k.branchless_s,
            k.scalar_s / k.blocked_s
        );
        s.push_str(if i + 1 == kernels.len() { "\n" } else { ",\n" });
    }
    s.push_str("  ]},\n");
    s.push_str("  \"results\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"n\": {}, \"r\": {}, \"m\": {}, \"workers\": {}, \
             \"workers_effective\": {}, \"shard_size\": {}, \"link_model\": \"{}\", \
             \"virtual_us\": {:.3}, \"wait_total_us\": {:.3}, \
             \"threaded_wall_s\": {:.6}, \"seq_wall_s\": {:.6}, \"par_wall_s\": {:.6}, \
             \"speedups\": {{\"seq_over_threaded\": {:.2}, \"par_over_threaded\": {:.2}, \
             \"par_over_seq\": {:.2}}}, \"phases\": {{",
            row.n,
            row.r,
            row.m_total,
            row.workers,
            row.workers_effective,
            row.shard_size,
            row.link_model,
            row.virtual_us,
            row.wait_total_us,
            row.threaded_s,
            row.seq_s,
            row.par_s,
            row.threaded_s / row.seq_s,
            row.threaded_s / row.par_s,
            row.seq_s / row.par_s
        );
        for (j, (name, us)) in row.phases.iter().enumerate() {
            let sep = if j == 0 { "" } else { ", " };
            let _ = write!(s, "{sep}\"{name}\": {us:.3}");
        }
        // Per-phase wall attribution: the seq engine's wall clock split
        // across phases in proportion to their virtual time (the engines
        // interleave phases across nodes, so the virtual profile is the
        // attribution base). Informational, like the wall columns —
        // bench_diff never gates on it.
        s.push_str("}, \"phase_walls\": {");
        let virtual_total: f64 = row.phases.iter().map(|(_, us)| us).sum();
        for (j, (name, us)) in row.phases.iter().enumerate() {
            let sep = if j == 0 { "" } else { ", " };
            let wall = if virtual_total > 0.0 {
                row.seq_s * us / virtual_total
            } else {
                0.0
            };
            let _ = write!(s, "{sep}\"{name}\": {wall:.6}");
        }
        s.push_str("}}");
        s.push_str(if i + 1 == rows.len() { "\n" } else { ",\n" });
    }
    s.push_str("  ]\n}\n");
    s
}
