//! Engine shoot-out: wall-clock time of the **threaded** MIMD engine, the
//! **sequential** event-driven engine, and the **parallel** work-stealing
//! engine running the identical full fault-tolerant sort, emitted as
//! machine-readable `BENCH_engines.json`.
//!
//! All three engines produce byte-identical simulated results (sorted
//! output, virtual time, operation counts — asserted here per run); the
//! only thing that differs is how long the host takes to compute them. The
//! sequential engine beats the threaded one because it replaces `2^n` OS
//! threads + channel handoffs with one lowest-virtual-clock scheduler loop
//! and zero-allocation buffer reuse; the parallel engine additionally
//! work-steals cache-sized node shards across a worker pool, so its
//! advantage over `seq` scales with `host_cores` (reported in the JSON).
//! Each `n` is benchmarked at several worker counts — the
//! `{1, 2, 4, host_cores}` ladder, deduplicated — one JSON row per
//! `(n, workers)` pair, so the par-beats-seq crossover is visible in the
//! data and `bench_diff` can gate on it. On a single-core host every
//! rung degenerates to the seq loop plus scheduler overhead and the
//! crossover cannot manifest (rungs above the core count still run: they
//! exercise oversubscription and keep row keys comparable across hosts).
//!
//! ```text
//! cargo run -p ft-bench --release --bin engines_json \
//!     [-- --sizes 6,8,10 --m 16000 --trials 3 --seed 1992 --out BENCH_engines.json]
//! ```
//!
//! Compare two outputs (e.g. before/after a scheduler change) with the
//! `bench_diff` binary, which flags per-engine and per-phase regressions
//! and checks the multi-core crossover.

use ft_bench::{random_faults, random_keys, ObsFlags, DEFAULT_SEED};
use ftsort::bitonic::Protocol;
use ftsort::ftsort::{
    fault_tolerant_sort_configured, fault_tolerant_sort_observed, FtConfig, FtPlan,
};
use hypercube::sim::EngineKind;
use std::fmt::Write as _;
use std::time::Instant;

struct Row {
    n: usize,
    r: usize,
    m_total: usize,
    /// Worker count the par engine was asked to run with for this row.
    workers: usize,
    /// Worker count that actually ran after the shard-count clamp
    /// (`schedule_for`): on small cubes fewer shards than workers exist.
    workers_effective: usize,
    /// Effective shard size (after `auto_shard_size`).
    shard_size: usize,
    virtual_us: f64,
    threaded_s: f64,
    seq_s: f64,
    par_s: f64,
    /// Per-phase virtual time, `(name, max-over-nodes µs)`, from the
    /// run's [`RunReport`](hypercube::obs::RunReport).
    phases: Vec<(String, f64)>,
}

/// The worker-count ladder for a host with `host_cores` cores:
/// `{1, 2, 4, host_cores}`, deduplicated, ascending. Rungs above the
/// core count still run — they measure the scheduler's oversubscription
/// robustness, and emitting them unconditionally keeps row keys
/// comparable across hosts with different core counts.
fn worker_ladder(host_cores: usize) -> Vec<usize> {
    let mut ladder = vec![1, 2, 4, host_cores];
    ladder.sort_unstable();
    ladder.dedup();
    ladder
}

fn main() {
    let mut sizes: Vec<usize> = vec![6, 8, 10];
    let mut m_total = 16_000usize;
    let mut trials = 3usize;
    let mut seed = DEFAULT_SEED;
    let mut out = String::from("BENCH_engines.json");
    let mut obs_flags = ObsFlags::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--sizes" => {
                sizes = args
                    .next()
                    .unwrap_or_default()
                    .split(',')
                    .filter_map(|v| v.parse().ok())
                    .collect();
                if sizes.is_empty() {
                    eprintln!("--sizes needs a comma list, e.g. 6,8,10");
                    std::process::exit(2);
                }
            }
            "--m" => m_total = args.next().and_then(|v| v.parse().ok()).unwrap_or(m_total),
            "--trials" => trials = args.next().and_then(|v| v.parse().ok()).unwrap_or(trials),
            "--seed" => seed = args.next().and_then(|v| v.parse().ok()).unwrap_or(seed),
            "--out" => out = args.next().unwrap_or(out),
            other => {
                if !obs_flags.parse(other, &mut args) {
                    eprintln!("unknown argument {other}");
                    std::process::exit(2);
                }
            }
        }
    }
    let mut rng = ft_bench::rng(seed);
    let host_cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let ladder = worker_ladder(host_cores);

    println!(
        "Engine wall-clock comparison, full FT sort, M = {m_total}, r = n − 1, \
         best of {trials} runs; seed = {seed}, host cores = {host_cores}, \
         par workers {ladder:?}\n"
    );
    println!(
        "{:>3} {:>3} {:>7} {:>10} {:>12} {:>12} {:>12} {:>9} {:>9}",
        "n", "r", "workers", "virtual ms", "threaded s", "seq s", "par s", "seq/thr", "par/seq"
    );
    println!("{}", "-".repeat(86));

    let mut rows = Vec::new();
    for &n in &sizes {
        let r = n - 1;
        let faults = random_faults(n, r, &mut rng);
        let plan = FtPlan::new(&faults).expect("r = n − 1 is tolerable");
        let data = random_keys(m_total, &mut rng);
        let time = |kind: EngineKind, threads: Option<usize>| {
            let config = FtConfig {
                protocol: Protocol::HalfExchange,
                engine: kind,
                threads,
                ..FtConfig::default()
            };
            let mut best = f64::INFINITY;
            let mut outcome = None;
            for _ in 0..trials {
                let start = Instant::now();
                let run = fault_tolerant_sort_configured(&plan, &config, data.clone());
                best = best.min(start.elapsed().as_secs_f64());
                outcome = Some(run);
            }
            (best, outcome.expect("trials ≥ 1"))
        };
        let (threaded_s, threaded) = time(EngineKind::Threaded, None);
        let (seq_s, seq) = time(EngineKind::Seq, None);
        // the engines must be indistinguishable in simulated results
        assert_eq!(
            threaded.sorted, seq.sorted,
            "n={n}: threaded output differs"
        );
        assert_eq!(
            threaded.time_us, seq.time_us,
            "n={n}: threaded time differs"
        );
        assert_eq!(threaded.stats, seq.stats, "n={n}: threaded counts differ");
        // One extra (untimed) observed run per n: its RunReport supplies
        // the per-phase virtual-time split, and the observability exports
        // reuse it — so trace-recording overhead never contaminates the
        // wall clocks.
        let config = FtConfig {
            protocol: Protocol::HalfExchange,
            engine: EngineKind::Seq,
            tracing: obs_flags.tracing(),
            ..FtConfig::default()
        };
        let (_, _, obs) = fault_tolerant_sort_observed(&plan, &config, data.clone());
        let report = obs.report(&ftsort::ftsort::phase_name);
        let phases: Vec<(String, f64)> = report
            .phases
            .iter()
            .map(|p| (p.name.clone(), p.max_node_us))
            .collect();
        if obs_flags.enabled() {
            obs_flags.observe(obs);
        }
        if obs_flags.sched_enabled() {
            let config = FtConfig {
                protocol: Protocol::HalfExchange,
                ..FtConfig::default()
            };
            obs_flags.profile_sched(&plan, &config, data.clone());
        }
        for &workers in &ladder {
            let (workers_effective, shard_size, _) =
                hypercube::sim::par::schedule_for(plan.live_count(), Some(workers), None);
            let (par_s, par) = time(EngineKind::Par, Some(workers));
            assert_eq!(
                par.sorted, seq.sorted,
                "n={n} workers={workers}: par sorted output differs"
            );
            assert_eq!(
                par.time_us, seq.time_us,
                "n={n} workers={workers}: par virtual time differs"
            );
            assert_eq!(
                par.stats, seq.stats,
                "n={n} workers={workers}: par operation counts differ"
            );
            println!(
                "{:>3} {:>3} {:>7} {:>10.1} {:>12.3} {:>12.3} {:>12.3} {:>8.1}× {:>8.2}×",
                n,
                r,
                workers,
                seq.time_us / 1000.0,
                threaded_s,
                seq_s,
                par_s,
                threaded_s / seq_s,
                seq_s / par_s
            );
            rows.push(Row {
                n,
                r,
                m_total,
                workers,
                workers_effective,
                shard_size,
                virtual_us: seq.time_us,
                threaded_s,
                seq_s,
                par_s,
                phases: phases.clone(),
            });
        }
    }

    let json = render_json(seed, trials, host_cores, &rows);
    std::fs::write(&out, &json).expect("write BENCH_engines.json");
    println!("\nwrote {out}");
    obs_flags.write();
}

/// Hand-rolled JSON so the report stays dependency-free.
fn render_json(seed: u64, trials: usize, host_cores: usize, rows: &[Row]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"bench\": \"engines\",");
    let _ = writeln!(s, "  \"seed\": {seed},");
    let _ = writeln!(s, "  \"trials\": {trials},");
    let _ = writeln!(s, "  \"host_cores\": {host_cores},");
    let _ = writeln!(s, "  \"identical_simulated_results\": true,");
    s.push_str("  \"results\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"n\": {}, \"r\": {}, \"m\": {}, \"workers\": {}, \
             \"workers_effective\": {}, \"shard_size\": {}, \"virtual_us\": {:.3}, \
             \"threaded_wall_s\": {:.6}, \"seq_wall_s\": {:.6}, \"par_wall_s\": {:.6}, \
             \"speedups\": {{\"seq_over_threaded\": {:.2}, \"par_over_threaded\": {:.2}, \
             \"par_over_seq\": {:.2}}}, \"phases\": {{",
            row.n,
            row.r,
            row.m_total,
            row.workers,
            row.workers_effective,
            row.shard_size,
            row.virtual_us,
            row.threaded_s,
            row.seq_s,
            row.par_s,
            row.threaded_s / row.seq_s,
            row.threaded_s / row.par_s,
            row.seq_s / row.par_s
        );
        for (j, (name, us)) in row.phases.iter().enumerate() {
            let sep = if j == 0 { "" } else { ", " };
            let _ = write!(s, "{sep}\"{name}\": {us:.3}");
        }
        // Per-phase wall attribution: the seq engine's wall clock split
        // across phases in proportion to their virtual time (the engines
        // interleave phases across nodes, so the virtual profile is the
        // attribution base). Informational, like the wall columns —
        // bench_diff never gates on it.
        s.push_str("}, \"phase_walls\": {");
        let virtual_total: f64 = row.phases.iter().map(|(_, us)| us).sum();
        for (j, (name, us)) in row.phases.iter().enumerate() {
            let sep = if j == 0 { "" } else { ", " };
            let wall = if virtual_total > 0.0 {
                row.seq_s * us / virtual_total
            } else {
                0.0
            };
            let _ = write!(s, "{sep}\"{name}\": {wall:.6}");
        }
        s.push_str("}}");
        s.push_str(if i + 1 == rows.len() { "\n" } else { ",\n" });
    }
    s.push_str("  ]\n}\n");
    s
}
