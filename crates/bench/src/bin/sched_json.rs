//! Scheduler-health bench: runs the full fault-tolerant sort on the
//! work-stealing parallel engine with the scheduler profiler attached and
//! emits machine-readable `BENCH_sched.json` — one row per
//! `(n, workers)` rung of the `{1, 2, 4, host_cores}` ladder with the
//! three headline metrics of a [`SchedReport`]: **utilization**
//! (Σ busy / workers × makespan), **steal_rate** (stolen / claimed) and
//! **barrier_share** (barrier + park / Σ wall). `bench_diff` gates these
//! rows like the engine rows: utilization must not collapse and barrier
//! share must not balloon between two runs on the same host.
//!
//! Each rung runs `--trials` profiled sorts and keeps the trial with the
//! smallest makespan — same best-of discipline as `engines_json`, since
//! scheduler noise (a descheduled worker, a cold cache) only ever makes
//! utilization look *worse* than the scheduler's real health.
//!
//! ```text
//! cargo run -p ft-bench --release --bin sched_json \
//!     [-- --sizes 6,8,10 --m 16000 --trials 3 --seed 1992 \
//!          --key-type i64 --out BENCH_sched.json]
//! ```
//!
//! [`SchedReport`]: hypercube::obs::sched::SchedReport

use ft_bench::{random_faults, random_keys_typed, GenKey, DEFAULT_SEED};
use ftsort::bitonic::Protocol;
use ftsort::ftsort::{fault_tolerant_sort_sched, FtConfig, FtPlan};
use ftsort::seq::{KeyPair, KeyType};
use hypercube::obs::sched::{SchedProfiler, SchedReport};
use hypercube::sim::EngineKind;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

struct Row {
    n: usize,
    r: usize,
    m_total: usize,
    /// Worker count requested for this rung.
    workers: usize,
    report: SchedReport,
    /// Wall seconds of the kept (min-makespan) profiled run.
    profile_wall_s: f64,
}

/// The same `{1, 2, 4, host_cores}` ladder as `engines_json`, so sched
/// rows and engine rows key identically across hosts.
fn worker_ladder(host_cores: usize) -> Vec<usize> {
    let mut ladder = vec![1, 2, 4, host_cores];
    ladder.sort_unstable();
    ladder.dedup();
    ladder
}

struct Cfg {
    sizes: Vec<usize>,
    m_total: usize,
    trials: usize,
    seed: u64,
    out: String,
    key_type: KeyType,
}

fn main() {
    let mut sizes: Vec<usize> = vec![6, 8, 10];
    let mut m_total = 16_000usize;
    let mut trials = 3usize;
    let mut seed = DEFAULT_SEED;
    let mut out = String::from("BENCH_sched.json");
    let mut key_type = KeyType::default();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--sizes" => {
                sizes = args
                    .next()
                    .unwrap_or_default()
                    .split(',')
                    .filter_map(|v| v.parse().ok())
                    .collect();
                if sizes.is_empty() {
                    eprintln!("--sizes needs a comma list, e.g. 6,8,10");
                    std::process::exit(2);
                }
            }
            "--m" => m_total = args.next().and_then(|v| v.parse().ok()).unwrap_or(m_total),
            "--trials" => trials = args.next().and_then(|v| v.parse().ok()).unwrap_or(trials),
            "--seed" => seed = args.next().and_then(|v| v.parse().ok()).unwrap_or(seed),
            "--out" => out = args.next().unwrap_or(out),
            "--key-type" => key_type = ft_bench::parse_key_type(args.next()),
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
    }
    let cfg = Cfg {
        sizes,
        m_total,
        trials,
        seed,
        out,
        key_type,
    };
    match cfg.key_type {
        KeyType::U32 => run::<u32>(cfg),
        KeyType::U64 => run::<u64>(cfg),
        KeyType::I64 => run::<i64>(cfg),
        KeyType::Pair => run::<KeyPair>(cfg),
    }
}

fn run<K: GenKey>(cfg: Cfg) {
    let Cfg {
        sizes,
        m_total,
        trials,
        seed,
        out,
        key_type,
    } = cfg;
    let mut rng = ft_bench::rng(seed);
    let host_cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let ladder = worker_ladder(host_cores);

    println!(
        "Scheduler profile of the par engine, full FT sort, M = {m_total}, r = n − 1, \
         best of {trials} runs; seed = {seed}, keys = {key_type}, \
         host cores = {host_cores}, workers {ladder:?}\n"
    );
    println!(
        "{:>3} {:>3} {:>7} {:>9} {:>12} {:>11} {:>13} {:>10}",
        "n", "r", "workers", "effective", "utilization", "steal rate", "barrier share", "wall s"
    );
    println!("{}", "-".repeat(75));

    let mut rows = Vec::new();
    for &n in &sizes {
        let r = n - 1;
        let faults = random_faults(n, r, &mut rng);
        let plan = FtPlan::new(&faults).expect("r = n − 1 is tolerable");
        let data: Vec<K> = random_keys_typed(m_total, &mut rng);
        let mut expect = data.clone();
        expect.sort_unstable();
        for &workers in &ladder {
            let config = FtConfig {
                protocol: Protocol::HalfExchange,
                engine: EngineKind::Par,
                threads: Some(workers),
                ..FtConfig::default()
            };
            let mut best: Option<(u64, SchedReport, f64)> = None;
            for _ in 0..trials {
                let profiler = Arc::new(SchedProfiler::new());
                let start = Instant::now();
                let (sort, _, _) = fault_tolerant_sort_sched(
                    &plan,
                    &config,
                    data.clone(),
                    None,
                    Arc::clone(&profiler),
                );
                let wall_s = start.elapsed().as_secs_f64();
                assert_eq!(sort.sorted, expect, "n={n} workers={workers}: sort broke");
                let profile = profiler.take().expect("par run installs a profile");
                let makespan = profile.makespan_ns();
                if best.as_ref().is_none_or(|(b, _, _)| makespan < *b) {
                    best = Some((makespan, profile.report(), wall_s));
                }
            }
            let (_, report, profile_wall_s) = best.expect("trials ≥ 1");
            println!(
                "{:>3} {:>3} {:>7} {:>9} {:>12.3} {:>11.3} {:>13.3} {:>10.4}",
                n,
                r,
                workers,
                report.workers,
                report.utilization(),
                report.steal_rate(),
                report.barrier_share(),
                profile_wall_s,
            );
            rows.push(Row {
                n,
                r,
                m_total,
                workers,
                report,
                profile_wall_s,
            });
        }
    }

    let json = render_json(seed, trials, m_total, host_cores, key_type, &rows);
    std::fs::write(&out, &json).expect("write BENCH_sched.json");
    println!("\nwrote {out}");
}

/// Hand-rolled JSON, same shape discipline as `BENCH_engines.json`:
/// top-level provenance, then one flat row per `(n, workers)`.
fn render_json(
    seed: u64,
    trials: usize,
    m_total: usize,
    host_cores: usize,
    key_type: KeyType,
    rows: &[Row],
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"bench\": \"sched\",");
    let _ = writeln!(s, "  \"seed\": {seed},");
    let _ = writeln!(s, "  \"m\": {m_total},");
    let _ = writeln!(s, "  \"trials\": {trials},");
    let _ = writeln!(s, "  \"host_cores\": {host_cores},");
    let _ = writeln!(s, "  \"key_type\": \"{key_type}\",");
    s.push_str("  \"results\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"n\": {}, \"r\": {}, \"m\": {}, \"workers\": {}, \
             \"workers_effective\": {}, \"shard_size\": {}, \"shard_count\": {}, \
             \"utilization\": {:.4}, \"steal_rate\": {:.4}, \"barrier_share\": {:.4}, \
             \"makespan_ns\": {}, \"events_dropped\": {}, \"profile_wall_s\": {:.6}}}",
            row.n,
            row.r,
            row.m_total,
            row.workers,
            row.report.workers,
            row.report.shard_size,
            row.report.shard_count,
            row.report.utilization(),
            row.report.steal_rate(),
            row.report.barrier_share(),
            row.report.makespan_ns,
            row.report.events_dropped,
            row.profile_wall_s,
        );
        s.push_str(if i + 1 == rows.len() { "\n" } else { ",\n" });
    }
    s.push_str("  ]\n}\n");
    s
}
