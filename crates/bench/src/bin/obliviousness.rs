//! Data-obliviousness experiment (beyond the paper): the fault-tolerant
//! bitonic sort's communication schedule never depends on key values, so
//! its simulated time is (near-)constant across input distributions —
//! while pivot-driven hyperquicksort swings widely. This structural
//! robustness is part of why bitonic sorting suited SIMD/MIMD hypercubes
//! and why the paper's fault-tolerance surgery is possible at all.
//!
//! ```text
//! cargo run -p ft-bench --release --bin obliviousness \
//!     [-- --n 5 --m 64000 --seed 1992 --engine seq --key-type i64 --threads 4 --trace-out t.json --metrics-out m.json]
//! ```

use ft_bench::workload::Workload;
use ft_bench::{parse_engine, GenKey, ObsFlags, DEFAULT_SEED};
use ftsort::baselines::hyperquicksort_with_engine;
use ftsort::bitonic::Protocol;
use ftsort::ftsort::{fault_tolerant_sort_observed, FtConfig, FtPlan};
use ftsort::seq::{KeyPair, KeyType};
use hypercube::cost::CostModel;
use hypercube::fault::FaultSet;
use hypercube::sim::EngineKind;
use hypercube::topology::Hypercube;

fn main() {
    let mut n = 5usize;
    let mut m_total = 64_000usize;
    let mut seed = DEFAULT_SEED;
    let mut engine = EngineKind::default();
    let mut key_type = KeyType::default();
    let mut obs_flags = ObsFlags::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--n" => n = args.next().and_then(|v| v.parse().ok()).unwrap_or(n),
            "--m" => m_total = args.next().and_then(|v| v.parse().ok()).unwrap_or(m_total),
            "--seed" => seed = args.next().and_then(|v| v.parse().ok()).unwrap_or(seed),
            "--engine" => engine = parse_engine(args.next()),
            "--key-type" => key_type = ft_bench::parse_key_type(args.next()),
            other => {
                if !obs_flags.parse(other, &mut args) {
                    eprintln!("unknown argument {other}");
                    std::process::exit(2);
                }
            }
        }
    }
    match key_type {
        KeyType::U32 => run::<u32>(n, m_total, seed, engine, key_type, obs_flags),
        KeyType::U64 => run::<u64>(n, m_total, seed, engine, key_type, obs_flags),
        KeyType::I64 => run::<i64>(n, m_total, seed, engine, key_type, obs_flags),
        KeyType::Pair => run::<KeyPair>(n, m_total, seed, engine, key_type, obs_flags),
    }
}

fn run<K: GenKey>(
    n: usize,
    m_total: usize,
    seed: u64,
    engine: EngineKind,
    key_type: KeyType,
    mut obs_flags: ObsFlags,
) {
    let mut rng = ft_bench::rng(seed);
    let cube = Hypercube::new(n);
    let faults = FaultSet::random(cube, n - 1, &mut rng);
    println!(
        "Data-obliviousness on Q{n} (faults {:?} for ours; hyperquicksort runs \
         fault-free), M = {m_total}; seed = {seed}, keys = {key_type}\n",
        faults.to_vec()
    );
    println!(
        "{:<14} {:>14} {:>16}",
        "distribution", "FT bitonic ms", "hyperquick ms"
    );
    println!("{}", "-".repeat(46));
    let mut ft_times = Vec::new();
    let mut hq_times = Vec::new();
    for w in Workload::ALL {
        let data: Vec<K> = w.generate_typed(m_total, &mut rng);
        let mut expect = data.clone();
        expect.sort_unstable();
        let plan = FtPlan::new(&faults).expect("tolerable");
        let (ours, _, obs) = fault_tolerant_sort_observed(
            &plan,
            &FtConfig {
                protocol: Protocol::HalfExchange,
                engine,
                tracing: obs_flags.tracing(),
                threads: obs_flags.threads,
                ..FtConfig::default()
            },
            data.clone(),
        );
        assert_eq!(ours.sorted, expect);
        if obs_flags.enabled() {
            obs_flags.observe(obs);
        }
        if obs_flags.sched_enabled() {
            let config = FtConfig {
                protocol: Protocol::HalfExchange,
                engine,
                ..FtConfig::default()
            };
            obs_flags.profile_sched(&plan, &config, data.clone());
        }
        let hq = hyperquicksort_with_engine(cube, CostModel::default(), data, engine);
        assert_eq!(hq.sorted, expect);
        println!(
            "{:<14} {:>14.1} {:>16.1}",
            format!("{w:?}"),
            ours.time_us / 1000.0,
            hq.time_us / 1000.0
        );
        ft_times.push(ours.time_us);
        hq_times.push(hq.time_us);
    }
    let spread = |v: &[f64]| {
        let min = v.iter().copied().fold(f64::INFINITY, f64::min);
        let max = v.iter().copied().fold(0.0f64, f64::max);
        (max - min) / min * 100.0
    };
    println!("{}", "-".repeat(46));
    println!(
        "spread (max−min)/min: FT bitonic {:.1}%, hyperquicksort {:.1}%",
        spread(&ft_times),
        spread(&hq_times)
    );
    obs_flags.write();
}
