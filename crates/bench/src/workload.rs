//! Workload generators for the harness.
//!
//! The paper evaluates on uniformly random keys; these generators widen the
//! sweep so the harness can demonstrate a structural property of the
//! algorithm family: bitonic sorting is *data-oblivious* (its communication
//! schedule never depends on key values), so its simulated time is
//! identical across distributions — unlike pivot-driven algorithms such as
//! hyperquicksort.

use rand::rngs::StdRng;
use rand::Rng;

/// A key distribution.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Workload {
    /// Uniform random over the full `u32` range (the paper's workload).
    Uniform,
    /// Already sorted ascending.
    Sorted,
    /// Sorted descending.
    Reversed,
    /// Sorted with a small fraction of random swaps.
    NearlySorted,
    /// Very few distinct values (heavy duplication).
    FewDistinct,
    /// Sum of four uniforms — a rough bell curve.
    Gaussianish,
    /// Organ pipe: ascending then descending.
    OrganPipe,
}

impl Workload {
    /// All generators, for sweeps.
    pub const ALL: [Workload; 7] = [
        Workload::Uniform,
        Workload::Sorted,
        Workload::Reversed,
        Workload::NearlySorted,
        Workload::FewDistinct,
        Workload::Gaussianish,
        Workload::OrganPipe,
    ];

    /// Generates `m` keys.
    pub fn generate(self, m: usize, rng: &mut StdRng) -> Vec<u32> {
        match self {
            Workload::Uniform => (0..m).map(|_| rng.random()).collect(),
            Workload::Sorted => (0..m as u32).collect(),
            Workload::Reversed => (0..m as u32).rev().collect(),
            Workload::NearlySorted => {
                let mut v: Vec<u32> = (0..m as u32).collect();
                for _ in 0..m / 20 {
                    if m >= 2 {
                        let i = rng.random_range(0..m);
                        let j = rng.random_range(0..m);
                        v.swap(i, j);
                    }
                }
                v
            }
            Workload::FewDistinct => (0..m).map(|_| rng.random_range(0..4u32)).collect(),
            Workload::Gaussianish => (0..m)
                .map(|_| (0..4).map(|_| rng.random_range(0..1u32 << 24)).sum::<u32>())
                .collect(),
            Workload::OrganPipe => {
                let half = m / 2;
                (0..half as u32)
                    .chain((0..(m - half) as u32).rev())
                    .collect()
            }
        }
    }

    /// Generates `m` keys of any [`GenKey`](crate::GenKey) type: uniform
    /// draws native keys, every structured shape embeds the `u32` ranks of
    /// [`generate`](Self::generate) order-preservingly — so the schedule
    /// shapes stay identical across key types.
    pub fn generate_typed<K: crate::GenKey>(self, m: usize, rng: &mut StdRng) -> Vec<K> {
        match self {
            Workload::Uniform => (0..m).map(|_| K::gen(rng)).collect(),
            _ => self
                .generate(m, rng)
                .into_iter()
                .map(K::from_rank)
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn generators_produce_requested_length() {
        let mut rng = StdRng::seed_from_u64(1);
        for w in Workload::ALL {
            for m in [0usize, 1, 17, 1000] {
                assert_eq!(w.generate(m, &mut rng).len(), m, "{w:?}");
            }
        }
    }

    #[test]
    fn sorted_and_reversed_have_their_shape() {
        let mut rng = StdRng::seed_from_u64(2);
        let s = Workload::Sorted.generate(100, &mut rng);
        assert!(s.windows(2).all(|w| w[0] <= w[1]));
        let r = Workload::Reversed.generate(100, &mut rng);
        assert!(r.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn few_distinct_really_is_few() {
        let mut rng = StdRng::seed_from_u64(3);
        let v = Workload::FewDistinct.generate(1000, &mut rng);
        let distinct: std::collections::HashSet<u32> = v.into_iter().collect();
        assert!(distinct.len() <= 4);
    }
}
