//! Shared helpers for the benchmark harness that regenerates every table
//! and figure of the paper's evaluation (§4).

use ftsort::ftsort::FtPlan;
use ftsort::mffs::max_fault_free_subcube;
use ftsort::seq::Key;
use hypercube::fault::FaultSet;
use hypercube::topology::Hypercube;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The seed printed by every report binary so runs are reproducible.
pub const DEFAULT_SEED: u64 = 1992;

/// The paper's experiment size: 10 000 random fault placements per cell.
pub const DEFAULT_TRIALS: usize = 10_000;

/// Draws a random fault set of size `r` on `Q_n`.
pub fn random_faults(n: usize, r: usize, rng: &mut StdRng) -> FaultSet {
    FaultSet::random(Hypercube::new(n), r, rng)
}

/// Random `u32` keys.
pub fn random_keys(m: usize, rng: &mut StdRng) -> Vec<u32> {
    (0..m).map(|_| rng.random()).collect()
}

/// Key types the harness can draw uniformly at random — the set behind
/// every report binary's `--key-type` flag ([`ftsort::seq::KeyType`]).
pub trait GenKey: Key {
    /// One uniformly random key.
    fn gen(rng: &mut StdRng) -> Self;

    /// Embeds a `u32` magnitude into the key type, preserving order — the
    /// structured workload generators ([`workload::Workload`]) build their
    /// shapes (sorted, organ pipe, …) from ranks.
    fn from_rank(rank: u32) -> Self;
}

macro_rules! impl_gen_key {
    ($($t:ty),*) => {$(
        impl GenKey for $t {
            fn gen(rng: &mut StdRng) -> Self {
                rng.random()
            }
            fn from_rank(rank: u32) -> Self {
                rank as $t
            }
        }
    )*};
}
impl_gen_key!(u32, u64, i64);

impl GenKey for ftsort::seq::KeyPair {
    fn gen(rng: &mut StdRng) -> Self {
        ftsort::seq::KeyPair::new(rng.random(), rng.random())
    }
    fn from_rank(rank: u32) -> Self {
        ftsort::seq::KeyPair::new(rank as u64, 0)
    }
}

/// Random keys of any [`GenKey`] type; the typed counterpart of
/// [`random_keys`] for `--key-type` dispatch.
pub fn random_keys_typed<K: GenKey>(m: usize, rng: &mut StdRng) -> Vec<K> {
    (0..m).map(|_| K::gen(rng)).collect()
}

/// Parses a `--key-type` value for the report binaries, exiting with a
/// usage error on unknown spellings. The key type changes the element
/// width and comparison outcomes of the generated workload (and therefore
/// the simulated clocks); it never changes the communication schedule.
pub fn parse_key_type(value: Option<String>) -> ftsort::seq::KeyType {
    let Some(v) = value else {
        eprintln!("--key-type requires a value (u32|u64|i64|pair)");
        std::process::exit(2);
    };
    match ftsort::seq::KeyType::parse(&v) {
        Ok(kt) => kt,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    }
}

/// A seeded RNG for the harness.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Parses a `--engine` value for the report binaries, exiting with a usage
/// error on unknown spellings. All engines produce identical simulated
/// results; the flag only changes how fast the reports regenerate.
pub fn parse_engine(value: Option<String>) -> hypercube::sim::EngineKind {
    let Some(v) = value else {
        eprintln!("--engine requires a value (threaded|seq|par)");
        std::process::exit(2);
    };
    match hypercube::sim::EngineKind::parse(&v) {
        Some(kind) => kind,
        None => {
            eprintln!("unknown engine '{v}' (threaded|seq|par)");
            std::process::exit(2);
        }
    }
}

/// `--trace-out FILE` / `--metrics-out FILE` / `--run-out FILE` support
/// shared by the report binaries: when any flag is given, the binary records the
/// [`RunObservation`](hypercube::obs::RunObservation) of its **last**
/// fault-tolerant sort and writes the Perfetto trace and/or
/// [`RunReport`](hypercube::obs::RunReport) JSON on exit — the same
/// artifacts `ftsort-cli sort` emits, so any report row can be drilled
/// into with the observability tooling. `--metrics-snapshot` /
/// `--log-level` / `--log-out` attach the live telemetry layer the same
/// way the CLI does.
#[derive(Default)]
pub struct ObsFlags {
    /// Perfetto trace destination (`--trace-out`).
    pub trace_out: Option<String>,
    /// `RunReport` JSON destination (`--metrics-out`).
    pub metrics_out: Option<String>,
    /// Replayable run-file destination (`--run-out`) — the schema
    /// [`ftsort-cli replay`](../ftsort-cli) and `trace-diff` consume.
    pub run_out: Option<String>,
    /// Worker count for the parallel engine (`--threads`, default: the
    /// host's available parallelism). Recorded in the `--metrics-out`
    /// report when given; wall-clock only, never simulated results.
    pub threads: Option<usize>,
    /// `SchedReport` JSON destination (`--sched-out`): per-worker
    /// wall-clock scheduler telemetry from an extra profiled par-engine
    /// run. Also writes `<path>.perfetto.json` (worker timeline + steal
    /// flows) and prints the ASCII summary.
    pub sched_out: Option<String>,
    /// `--sched-profile`: print the scheduler summary and worker timeline
    /// without writing files.
    pub sched_profile: bool,
    /// Prometheus-exposition destination (`--metrics-snapshot`): installs
    /// the process-wide live-telemetry registry
    /// ([`hypercube::obs::metrics`]) at parse time — before any run, so
    /// engines/pools/sinks built later pick it up — and writes the final
    /// snapshot in [`write`](Self::write).
    pub metrics_snapshot: Option<String>,
    /// Structured-log destination (`--log-out`): installs the JSON-lines
    /// logger ([`hypercube::obs::log`]) at parse time. Pass it *before*
    /// `--log-level` when combining — the first installed writer wins.
    pub log_out: Option<String>,
    last: Option<hypercube::obs::RunObservation>,
    sched_report: Option<hypercube::obs::sched::SchedReport>,
    sched_perfetto: Option<String>,
    sched_timeline: Option<String>,
}

impl ObsFlags {
    /// No exports requested.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes `--trace-out`/`--metrics-out` (and their values) from the
    /// argument stream; returns `false` for any other argument so callers
    /// can fall through to their own error handling.
    pub fn parse(&mut self, arg: &str, args: &mut dyn Iterator<Item = String>) -> bool {
        if arg == "--threads" {
            match args.next().map(|v| v.parse::<usize>()) {
                Some(Ok(t)) if t >= 1 => self.threads = Some(t),
                _ => {
                    eprintln!("--threads requires a worker count ≥ 1");
                    std::process::exit(2);
                }
            }
            return true;
        }
        if arg == "--sched-profile" {
            self.sched_profile = true;
            return true;
        }
        if arg == "--metrics-snapshot" {
            match args.next() {
                Some(path) => {
                    // Install before the runs so everything built later
                    // resolves the registry at construction.
                    hypercube::obs::metrics::install_global();
                    self.metrics_snapshot = Some(path);
                }
                None => {
                    eprintln!("--metrics-snapshot requires a file path");
                    std::process::exit(2);
                }
            }
            return true;
        }
        if arg == "--log-out" {
            use hypercube::obs::log;
            match args.next() {
                Some(path) => {
                    let file = std::fs::File::create(&path).unwrap_or_else(|e| {
                        eprintln!("--log-out: creating {path}: {e}");
                        std::process::exit(2);
                    });
                    let level = log::level().unwrap_or(log::Level::Info);
                    if !log::init(level, Box::new(file)) {
                        eprintln!("--log-out: a logger is already installed; records stay on the earlier writer");
                    }
                    self.log_out = Some(path);
                }
                None => {
                    eprintln!("--log-out requires a file path");
                    std::process::exit(2);
                }
            }
            return true;
        }
        if arg == "--log-level" {
            use hypercube::obs::log;
            match args.next().as_deref().and_then(log::Level::parse) {
                Some(level) => {
                    if log::level().is_some() {
                        log::set_level(level);
                    } else {
                        log::init_stderr(level);
                    }
                }
                None => {
                    eprintln!("--log-level requires one of error|warn|info|debug|trace");
                    std::process::exit(2);
                }
            }
            return true;
        }
        let slot = match arg {
            "--trace-out" => &mut self.trace_out,
            "--metrics-out" => &mut self.metrics_out,
            "--run-out" => &mut self.run_out,
            "--sched-out" => &mut self.sched_out,
            _ => return false,
        };
        match args.next() {
            Some(path) => *slot = Some(path),
            None => {
                eprintln!("{arg} requires a file path");
                std::process::exit(2);
            }
        }
        true
    }

    /// Whether the engine should record the event trace
    /// (`FtConfig::tracing`) — needed when a trace or run-file export was
    /// asked for; metrics come from the always-on spans.
    pub fn tracing(&self) -> bool {
        self.trace_out.is_some() || self.run_out.is_some()
    }

    /// Whether any export was requested; callers skip the observation
    /// plumbing entirely otherwise.
    pub fn enabled(&self) -> bool {
        self.trace_out.is_some() || self.metrics_out.is_some() || self.run_out.is_some()
    }

    /// Whether a scheduler profile was requested
    /// (`--sched-out`/`--sched-profile`).
    pub fn sched_enabled(&self) -> bool {
        self.sched_out.is_some() || self.sched_profile
    }

    /// Remembers `obs` as the run to export (last call wins).
    pub fn observe(&mut self, obs: hypercube::obs::RunObservation) {
        self.last = Some(obs);
    }

    /// Runs one extra par-engine sort of `data` with a
    /// [`SchedProfiler`](hypercube::obs::sched::SchedProfiler) attached and
    /// remembers the resulting [`SchedReport`], Perfetto export and worker
    /// timeline for [`write`](Self::write); a no-op unless
    /// `--sched-out`/`--sched-profile` was given. The profiled run is
    /// *extra* (and forced onto [`EngineKind::Par`]) so a report binary's
    /// own timed runs — whatever engine they use — stay untouched;
    /// simulated results are engine-independent, so the profiled run sorts
    /// the same data to the same bytes.
    ///
    /// [`SchedReport`]: hypercube::obs::sched::SchedReport
    /// [`EngineKind::Par`]: hypercube::sim::EngineKind::Par
    pub fn profile_sched<K>(&mut self, plan: &FtPlan, base: &ftsort::ftsort::FtConfig, data: Vec<K>)
    where
        K: Key,
    {
        if !self.sched_enabled() {
            return;
        }
        let profiler = std::sync::Arc::new(hypercube::obs::sched::SchedProfiler::new());
        let config = ftsort::ftsort::FtConfig {
            engine: hypercube::sim::EngineKind::Par,
            threads: self.threads,
            ..*base
        };
        let _ = ftsort::ftsort::fault_tolerant_sort_sched(
            plan,
            &config,
            data,
            None,
            std::sync::Arc::clone(&profiler),
        );
        if let Some(profile) = profiler.take() {
            self.sched_report = Some(profile.report());
            self.sched_perfetto = Some(profile.perfetto_json());
            self.sched_timeline = Some(profile.timeline(64));
        }
    }

    /// Writes the requested artifacts from the last observed run. Call
    /// once at the end of `main`.
    pub fn write(&self) {
        if let Some(path) = &self.metrics_snapshot {
            let global =
                hypercube::obs::metrics::global().expect("registry installed at parse time");
            std::fs::write(path, global.registry.render_prom()).expect("write metrics snapshot");
            println!("metrics snapshot: {path} (ftsort-cli trace-check --prom {path})");
        }
        if self.enabled() {
            let Some(obs) = &self.last else {
                eprintln!("--trace-out/--metrics-out: no run was observed");
                std::process::exit(2);
            };
            if let Some(path) = &self.trace_out {
                let json =
                    hypercube::obs::perfetto::perfetto_json(obs, &ftsort::ftsort::phase_name);
                std::fs::write(path, json).expect("write trace");
                println!("trace written  : {path} (load in ui.perfetto.dev)");
            }
            if let Some(path) = &self.metrics_out {
                let mut report = obs.report(&ftsort::ftsort::phase_name);
                if let Some(threads) = self.threads {
                    // Record the *effective* schedule next to the request:
                    // the par engine clamps workers to the shard count
                    // (`schedule_for`), and reports must not claim more
                    // workers than ever ran.
                    let live = report.nodes.len();
                    let (workers_effective, shard_size, _) =
                        hypercube::sim::par::schedule_for(live, Some(threads), None);
                    report = report
                        .with_threads(threads)
                        .with_schedule(workers_effective, shard_size);
                }
                std::fs::write(path, report.to_json()).expect("write metrics");
                println!("metrics written: {path}");
            }
            if let Some(path) = &self.run_out {
                hypercube::obs::replay::write_run_file(obs, path).expect("write run file");
                println!("run written    : {path} (ftsort-cli replay --trace {path})");
            }
        }
        if self.sched_enabled() {
            let Some(report) = &self.sched_report else {
                println!("sched profile  : no run was profiled (nothing to report)");
                return;
            };
            if let Some(path) = &self.sched_out {
                std::fs::write(path, report.to_json()).expect("write sched report");
                println!("sched written  : {path}");
                let trace_path = format!("{path}.perfetto.json");
                let trace = self
                    .sched_perfetto
                    .as_ref()
                    .expect("profiled run has a perfetto export");
                std::fs::write(&trace_path, trace).expect("write sched trace");
                println!("sched trace    : {trace_path} (load in ui.perfetto.dev)");
            }
            print!("{}", report.summary());
            if let Some(timeline) = &self.sched_timeline {
                print!("{timeline}");
            }
        }
    }
}

/// Calls `f` for every `r`-subset of the `2^n` processor addresses —
/// exhaustive enumeration of fault placements, for exact versions of the
/// paper's sampled tables. Returns the number of placements visited.
pub fn for_each_fault_set(n: usize, r: usize, mut f: impl FnMut(&FaultSet)) -> u64 {
    let cube = Hypercube::new(n);
    let p = cube.len();
    assert!(r <= p);
    let mut idx: Vec<u32> = (0..r as u32).collect();
    let mut count = 0u64;
    loop {
        let faults = FaultSet::new(
            cube,
            idx.iter().map(|&i| hypercube::address::NodeId::new(i)),
        );
        f(&faults);
        count += 1;
        // next combination
        let mut i = r;
        loop {
            if i == 0 {
                return count;
            }
            i -= 1;
            if idx[i] != (i + p - r) as u32 {
                idx[i] += 1;
                for j in i + 1..r {
                    idx[j] = idx[j - 1] + 1;
                }
                break;
            }
        }
    }
}

/// `C(2^n, r)` — how many placements [`for_each_fault_set`] will visit.
pub fn fault_set_count(n: usize, r: usize) -> u64 {
    let p = 1u128 << n;
    let mut acc: u128 = 1;
    for i in 0..r as u128 {
        acc = acc * (p - i) / (i + 1);
    }
    acc as u64
}

/// Statistics of one `(n, r)` cell of Table 1: how often each mincut value
/// occurred.
#[derive(Clone, Debug, Default)]
pub struct MincutHistogram {
    /// `counts[m]` = number of trials with mincut `m`.
    pub counts: Vec<usize>,
    /// Total trials.
    pub trials: usize,
}

impl MincutHistogram {
    /// Runs the partition algorithm `trials` times with random fault sets.
    pub fn collect(n: usize, r: usize, trials: usize, rng: &mut StdRng) -> Self {
        let mut counts = vec![0usize; n + 1];
        for _ in 0..trials {
            let faults = random_faults(n, r, rng);
            let result = ftsort::partition::partition(&faults).expect("separable");
            counts[result.mincut] += 1;
        }
        MincutHistogram { counts, trials }
    }

    /// Exact histogram over **every** fault placement (`C(2^n, r)` of them).
    pub fn collect_exhaustive(n: usize, r: usize) -> Self {
        let mut counts = vec![0usize; n + 1];
        let trials = for_each_fault_set(n, r, |faults| {
            let result = ftsort::partition::partition(faults).expect("separable");
            counts[result.mincut] += 1;
        });
        MincutHistogram {
            counts,
            trials: trials as usize,
        }
    }

    /// Percentage of trials with mincut `m`.
    pub fn percent(&self, m: usize) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.counts.get(m).copied().unwrap_or(0) as f64 * 100.0 / self.trials as f64
        }
    }
}

/// Utilization statistics of one `(n, r)` cell of Table 2.
#[derive(Clone, Debug)]
pub struct UtilizationCell {
    /// Best observed utilization (%) of the proposed algorithm.
    pub ours_best: f64,
    /// Worst observed utilization (%) of the proposed algorithm.
    pub ours_worst: f64,
    /// Best observed utilization (%) of the MFFS baseline.
    pub mffs_best: f64,
    /// Worst observed utilization (%) of the MFFS baseline.
    pub mffs_worst: f64,
}

impl UtilizationCell {
    /// Samples `trials` random fault placements.
    pub fn collect(n: usize, r: usize, trials: usize, rng: &mut StdRng) -> Self {
        let mut cell = UtilizationCell {
            ours_best: 0.0,
            ours_worst: f64::INFINITY,
            mffs_best: 0.0,
            mffs_worst: f64::INFINITY,
        };
        for _ in 0..trials {
            let faults = random_faults(n, r, rng);
            cell.absorb(&faults);
        }
        cell
    }

    /// Exact best/worst over **every** fault placement.
    pub fn collect_exhaustive(n: usize, r: usize) -> Self {
        let mut cell = UtilizationCell {
            ours_best: 0.0,
            ours_worst: f64::INFINITY,
            mffs_best: 0.0,
            mffs_worst: f64::INFINITY,
        };
        for_each_fault_set(n, r, |faults| cell.absorb(faults));
        cell
    }

    fn absorb(&mut self, faults: &FaultSet) {
        let normal = faults.normal_count() as f64;
        let plan = FtPlan::new(faults).expect("r ≤ n−1 tolerable");
        let ours = plan.live_count() as f64 / normal * 100.0;
        self.ours_best = self.ours_best.max(ours);
        self.ours_worst = self.ours_worst.min(ours);
        let sc = max_fault_free_subcube(faults).expect("normal node exists");
        let mffs = sc.len() as f64 / normal * 100.0;
        self.mffs_best = self.mffs_best.max(mffs);
        self.mffs_worst = self.mffs_worst.min(mffs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mincut_histogram_r0_r1_always_zero() {
        let mut rng = rng(1);
        for r in 0..=1 {
            let h = MincutHistogram::collect(4, r, 50, &mut rng);
            assert_eq!(h.counts[0], 50);
            assert!((h.percent(0) - 100.0).abs() < 1e-9);
        }
    }

    #[test]
    fn mincut_histogram_percentages_sum_to_100() {
        let mut rng = rng(2);
        let h = MincutHistogram::collect(6, 5, 200, &mut rng);
        let total: f64 = (0..=6).map(|m| h.percent(m)).sum();
        assert!((total - 100.0).abs() < 1e-9);
    }

    #[test]
    fn fault_set_enumeration_counts() {
        assert_eq!(fault_set_count(3, 0), 1);
        assert_eq!(fault_set_count(3, 2), 28);
        assert_eq!(fault_set_count(4, 3), 560);
        assert_eq!(fault_set_count(6, 5), 7_624_512);
        let mut seen = 0u64;
        let visited = for_each_fault_set(3, 2, |fs| {
            assert_eq!(fs.count(), 2);
            seen += 1;
        });
        assert_eq!(seen, 28);
        assert_eq!(visited, 28);
    }

    #[test]
    fn exhaustive_histogram_matches_structure() {
        // n=4, r=3: every placement has mincut exactly 2
        let h = MincutHistogram::collect_exhaustive(4, 3);
        assert_eq!(h.trials, 560);
        assert_eq!(h.counts[2], 560);
    }

    #[test]
    fn exhaustive_utilization_small_case() {
        let cell = UtilizationCell::collect_exhaustive(3, 2);
        // ours: F_3^1, live = 8−2 = 6 of 6 normal = 100%
        assert!((cell.ours_best - 100.0).abs() < 1e-9);
        assert!((cell.ours_worst - 100.0).abs() < 1e-9);
        // MFFS: best Q2 (4/6), worst Q1 (2/6)
        assert!((cell.mffs_best - 400.0 / 6.0).abs() < 1e-6);
        assert!((cell.mffs_worst - 200.0 / 6.0).abs() < 1e-6);
    }

    #[test]
    fn utilization_ours_dominates_mffs() {
        let mut rng = rng(3);
        for n in 4..=6 {
            for r in 1..n {
                let cell = UtilizationCell::collect(n, r, 50, &mut rng);
                assert!(
                    cell.ours_worst >= cell.mffs_best - 1e-9,
                    "n={n} r={r}: ours worst {} vs MFFS best {}",
                    cell.ours_worst,
                    cell.mffs_best
                );
            }
        }
    }
}

pub mod campaign;
pub mod workload;
