//! Smoke tests for the report binaries: each must run, exit zero, and print
//! its key structural markers (tiny trial counts keep this fast).

use std::process::Command;

fn run_path(path: &str, args: &[&str]) -> String {
    let out = Command::new(path)
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("{path} failed to launch: {e}"));
    assert!(
        out.status.success(),
        "{path} exited nonzero: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 output")
}

macro_rules! bin_runner {
    ($name:ident, $env:literal) => {
        fn $name(args: &[&str]) -> String {
            run_path(env!($env), args)
        }
    };
}

bin_runner!(table1, "CARGO_BIN_EXE_table1");
bin_runner!(table2, "CARGO_BIN_EXE_table2");
bin_runner!(figure7, "CARGO_BIN_EXE_figure7");
bin_runner!(breakdown, "CARGO_BIN_EXE_breakdown");
bin_runner!(obliviousness, "CARGO_BIN_EXE_obliviousness");
bin_runner!(scaling, "CARGO_BIN_EXE_scaling");
bin_runner!(engines_json, "CARGO_BIN_EXE_engines_json");
bin_runner!(bench_diff, "CARGO_BIN_EXE_bench_diff");

#[test]
fn table1_smoke() {
    let text = table1(&["--trials", "20", "--seed", "1"]);
    assert!(text.contains("Table 1"), "{text}");
    // structural certainties hold even at 20 trials
    assert!(text.contains(" 3  2 |        -  100.00%"), "{text}");
}

#[test]
fn table2_smoke() {
    let text = table2(&["--trials", "20", "--seed", "1"]);
    assert!(text.contains("Table 2"), "{text}");
    assert!(text.contains("MFFS"), "{text}");
}

#[test]
fn table2_ablation_smoke() {
    let text = table2(&["--trials", "10", "--seed", "1", "--ablation-selection"]);
    assert!(text.contains("Ablation: heuristic selection"), "{text}");
}

#[test]
fn figure7_smoke() {
    let text = figure7(&["--n", "3", "--trials", "1", "--seed", "1"]);
    assert!(text.contains("Figure 7(c)"), "{text}");
    assert!(text.contains("320000"), "{text}");
}

#[test]
fn figure7_csv_smoke() {
    let text = figure7(&["--n", "3", "--trials", "1", "--seed", "1", "--csv"]);
    let mut lines = text.lines();
    assert_eq!(lines.next(), Some("M,ours_r0,ours_r1,ours_r2,q2,q1"));
    assert!(lines.next().unwrap().starts_with("3200,"));
}

#[test]
fn breakdown_smoke() {
    let text = breakdown(&["--n", "4", "--m", "2000", "--seed", "1"]);
    assert!(text.contains("Phase breakdown"), "{text}");
    assert!(text.contains("step7"), "{text}");
}

#[test]
fn obliviousness_smoke() {
    let text = obliviousness(&["--n", "3", "--m", "2000", "--seed", "1"]);
    assert!(text.contains("spread"), "{text}");
    assert!(text.contains("OrganPipe"), "{text}");
}

#[test]
fn scaling_smoke() {
    let text = scaling(&["--m", "2000", "--seed", "1"]);
    assert!(text.contains("Machine-size sweep"), "{text}");
    assert!(text.contains("past r = n"), "{text}");
}

#[test]
fn breakdown_engine_flag_smoke() {
    // every engine must produce identical simulated output text
    let seq = breakdown(&["--n", "3", "--m", "500", "--seed", "1", "--engine", "seq"]);
    let thr = breakdown(&[
        "--n", "3", "--m", "500", "--seed", "1", "--engine", "threaded",
    ]);
    let par = breakdown(&["--n", "3", "--m", "500", "--seed", "1", "--engine", "par"]);
    assert_eq!(seq, thr);
    assert_eq!(seq, par);
}

#[test]
fn engines_json_smoke() {
    let out = std::env::temp_dir().join("ft_bench_engines_smoke.json");
    let out_str = out.to_str().unwrap();
    let text = engines_json(&[
        "--sizes", "3", "--m", "500", "--trials", "1", "--seed", "1", "--out", out_str,
    ]);
    assert!(text.contains("Engine wall-clock comparison"), "{text}");
    let json = std::fs::read_to_string(&out).expect("json written");
    let _ = std::fs::remove_file(&out);
    assert!(json.contains("\"bench\": \"engines\""), "{json}");
    assert!(json.contains("\"host_cores\""), "{json}");
    assert!(json.contains("\"n\": 3"), "{json}");
    assert!(json.contains("\"threaded_wall_s\""), "{json}");
    assert!(json.contains("\"seq_wall_s\""), "{json}");
    assert!(json.contains("\"par_wall_s\""), "{json}");
    assert!(json.contains("\"par_over_seq\""), "{json}");
    assert!(json.contains("\"workers\": 1"), "{json}");
}

#[test]
fn bench_diff_smoke() {
    let out = std::env::temp_dir().join("ft_bench_diff_smoke.json");
    let out_str = out.to_str().unwrap();
    engines_json(&[
        "--sizes", "3", "--m", "500", "--trials", "1", "--seed", "1", "--out", out_str,
    ]);
    // a file diffed against itself has no regressions: exit 0
    let text = bench_diff(&["--a", out_str, "--b", out_str]);
    assert!(text.contains("OK: no metric regressed"), "{text}");
    assert!(text.contains("virtual_us"), "{text}");
    assert!(text.contains("workers=1"), "{text}");
    assert!(text.contains("par_over_seq"), "{text}");
    // a negative tolerance flags even the +0.0% self-diff: exit 1
    let fail = Command::new(env!("CARGO_BIN_EXE_bench_diff"))
        .args(["--a", out_str, "--b", out_str, "--tolerance", "-1"])
        .output()
        .expect("bench_diff runs");
    assert_eq!(fail.status.code(), Some(1), "regression must exit 1");
    let text = String::from_utf8(fail.stdout).unwrap();
    assert!(text.contains("REGRESSION"), "{text}");
    assert!(text.contains("FAIL"), "{text}");
    // the wall-ratio gate fires the same way once the min-wall floor is
    // lifted (n = 3 runs are far below the 0.05 s default)
    let fail = Command::new(env!("CARGO_BIN_EXE_bench_diff"))
        .args([
            "--a",
            out_str,
            "--b",
            out_str,
            "--wall-tolerance",
            "-5",
            "--min-ratio-wall",
            "0",
        ])
        .output()
        .expect("bench_diff runs");
    let _ = std::fs::remove_file(&out);
    assert_eq!(fail.status.code(), Some(1), "wall-ratio gate must exit 1");
    let text = String::from_utf8(fail.stdout).unwrap();
    assert!(text.contains("par_over_seq"), "{text}");
    assert!(text.contains("REGRESSION"), "{text}");
}

#[test]
fn bench_diff_warns_on_dropped_events_without_failing() {
    // Hand-built sched-style rows: B reports ring drops. The diff must
    // print a loud WARNING but still exit 0 — truncated telemetry is not
    // a performance regression.
    let row = |dropped: u64| {
        format!(
            "{{\"results\": [{{\"n\": 10, \"r\": 1, \"m\": 4000, \"workers\": 4, \
             \"utilization\": 0.9, \"steal_rate\": 0.1, \"barrier_share\": 0.05, \
             \"events_dropped\": {dropped}}}], \"host_cores\": 8}}"
        )
    };
    let a = std::env::temp_dir().join("ft_bench_diff_drops_a.json");
    let b = std::env::temp_dir().join("ft_bench_diff_drops_b.json");
    std::fs::write(&a, row(0)).unwrap();
    std::fs::write(&b, row(37)).unwrap();
    let text = bench_diff(&["--a", a.to_str().unwrap(), "--b", b.to_str().unwrap()]);
    let _ = std::fs::remove_file(&a);
    let _ = std::fs::remove_file(&b);
    assert!(text.contains("WARNING"), "{text}");
    assert!(text.contains("dropped 37 event(s)"), "{text}");
    assert!(text.contains("OK: no metric regressed"), "{text}");
}
